"""Per-layer resilience aggregation (the analysis behind Fig. 7).

Wraps the campaign runner with the paper's §IV-C procedure: for a model and a
format, run value- and metadata-injection campaigns at layer granularity and
assemble the per-layer ΔLoss profile, plus the single-value network summary
(ΔLoss averaged across layers) used by the §V-A tuning discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.campaign import CampaignResult, run_campaign
from ..core.goldeneye import GoldenEye
from ..nn.module import Module
from .tables import render_table

__all__ = ["ResilienceProfile", "profile_resilience",
           "layer_vulnerability_table", "fault_pattern_table"]


@dataclass
class ResilienceProfile:
    """Value- and metadata-injection results for one (model, format) pair."""

    model_name: str
    format_name: str
    value_campaign: CampaignResult
    metadata_campaign: CampaignResult | None

    @property
    def layers(self) -> list[str]:
        return list(self.value_campaign.per_layer)

    def value_delta_losses(self) -> list[float]:
        return [r.mean_delta_loss for r in self.value_campaign.per_layer.values()]

    def metadata_delta_losses(self) -> list[float]:
        if self.metadata_campaign is None:
            return []
        return [r.mean_delta_loss for r in self.metadata_campaign.per_layer.values()]

    def network_value_delta_loss(self) -> float:
        """ΔLoss averaged across all layers (the §V-A summary scalar)."""
        losses = self.value_delta_losses()
        return float(np.mean(losses)) if losses else 0.0

    def network_metadata_delta_loss(self) -> float:
        losses = self.metadata_delta_losses()
        return float(np.mean(losses)) if losses else 0.0

    def combined_delta_loss(self) -> float:
        """Average of value and metadata resilience (Fig. 9's y-axis)."""
        parts = [self.network_value_delta_loss()]
        if self.metadata_campaign is not None:
            parts.append(self.network_metadata_delta_loss())
        return float(np.mean(parts))


def profile_resilience(
    model: Module,
    model_name: str,
    format_spec,
    images: np.ndarray,
    labels: np.ndarray,
    injections_per_layer: int = 100,
    location: str = "neuron",
    seed: int = 0,
    detector=None,
    use_range_detector: bool = False,
    targets=("conv", "linear"),
    profiler=None,
    numerics=None,
    workers: int = 1,
    journal: str | None = None,
    shard_timeout: float | None = None,
    batch_records: int = 32,
    shared_cache: bool = True,
    fault_batch: int = 1,
    fault_model="single",
    protect="none",
    serve=None,
    layers=None,
    ledger=None,
) -> ResilienceProfile:
    """Run the paper's per-layer value + metadata campaigns for one format.

    ``use_range_detector=True`` reproduces the paper's default setting
    (§V-B: the detector is enabled by default for resiliency analysis): a
    :class:`~repro.core.detector.RangeDetector` is profiled on a clean pass
    over the evaluation batch and then clamps every instrumented layer, so
    metadata blow-ups are bounded by each layer's observed activation range.

    ``profiler`` (a :class:`~repro.obs.profiler.LayerProfiler`) splits every
    instrumented forward into compute / quantize / inject / detect phases.

    ``numerics`` (a :class:`~repro.obs.numerics.NumericHealthMonitor`)
    records per-layer quantization error, saturation / flush-to-zero /
    NaN-remap counts and dynamic-range coverage through the formats' stats
    sinks; the campaign telemetry then carries a ``numeric_health`` summary.

    ``workers`` / ``journal`` / ``shard_timeout`` / ``batch_records`` /
    ``shared_cache`` / ``fault_batch`` are forwarded to
    :func:`~repro.core.campaign.run_campaign` (parallel execution and
    crash-safe write-ahead journaling — see :mod:`repro.exec`).  The
    metadata campaign journals to ``journal + ".metadata"`` so the two
    campaigns never share (and never clash over) one fingerprinted file.
    ``ledger`` (a path or open :class:`~repro.obs.ledger.CampaignLedger`)
    records both campaigns in the persistent run history; each gets its
    own row (their fingerprints differ by kind and seed).

    ``fault_model`` / ``protect`` select the campaign's fault model and
    ECC protection (see :mod:`repro.core.faultmodels` /
    :mod:`repro.core.ecc`).  Non-single fault models apply to value
    injections only, so the metadata campaign runs only under the default
    model.  ``layers`` restricts both campaigns to a subset of
    instrumented layers (required for the exhaustive model on all but the
    smallest layers).

    ``serve="host:port"`` starts one live observability server
    (:mod:`repro.obs.live`) spanning *both* campaigns — the value and
    metadata runs attach to it in turn, so a watcher keeps its endpoint
    across the hand-off instead of the port flapping between campaigns.
    """
    if use_range_detector and detector is None:
        from ..core.detector import RangeDetector

        detector = RangeDetector()
    platform = GoldenEye(model, format_spec, targets=targets,
                         range_detector=detector, profiler=profiler,
                         numerics=numerics)
    server = serve
    owns_server = False
    if isinstance(serve, str):
        from ..obs.live import LiveServer

        server = LiveServer.start(serve)
        owns_server = True
    try:
        with platform:
            if use_range_detector:
                from ..core.campaign import golden_inference

                detector.active = False
                golden_inference(platform, images, labels)  # profiling pass
                detector.active = True
            from ..core.faultmodels import parse_fault_model

            fault_spec = parse_fault_model(fault_model).spec()
            value_campaign = run_campaign(
                platform, images, labels, kind="value", location=location,
                injections_per_layer=injections_per_layer, seed=seed,
                layers=layers, workers=workers, journal=journal,
                shard_timeout=shard_timeout,
                batch_records=batch_records, shared_cache=shared_cache,
                fault_batch=fault_batch, fault_model=fault_model,
                protect=protect, serve=server, ledger=ledger,
            )
            fmt = platform.spawn_format()
            metadata_campaign = None
            # metadata campaigns support only the single-bit model (the
            # fault-model axis is a value-word concept); skip them rather
            # than silently running a different model than requested
            if fmt is not None and fmt.has_metadata and fault_spec == "single":
                metadata_journal = f"{journal}.metadata" if journal else None
                metadata_campaign = run_campaign(
                    platform, images, labels, kind="metadata",
                    location=location,
                    injections_per_layer=injections_per_layer, seed=seed + 1,
                    layers=layers, workers=workers, journal=metadata_journal,
                    shard_timeout=shard_timeout,
                    batch_records=batch_records, shared_cache=shared_cache,
                    fault_batch=fault_batch, protect=protect, serve=server,
                    ledger=ledger,
                )
    finally:
        if owns_server:
            server.close()
    return ResilienceProfile(
        model_name=model_name,
        format_name=value_campaign.format_name,
        value_campaign=value_campaign,
        metadata_campaign=metadata_campaign,
    )


def layer_vulnerability_table(profile: ResilienceProfile) -> str:
    """Fig. 7-style per-layer table: ΔLoss under value vs metadata flips."""
    meta = profile.metadata_campaign.per_layer if profile.metadata_campaign else {}
    rows = []
    for layer, value_result in profile.value_campaign.per_layer.items():
        meta_result = meta.get(layer)
        rows.append((
            layer,
            f"{value_result.mean_delta_loss:.4f}",
            f"{meta_result.mean_delta_loss:.4f}" if meta_result else "n/a",
            f"{value_result.mismatch_rate:.3f}",
            f"{meta_result.mismatch_rate:.3f}" if meta_result else "n/a",
        ))
    return render_table(
        ["layer", "ΔLoss (value)", "ΔLoss (metadata)", "mismatch (value)", "mismatch (metadata)"],
        rows,
        title=f"{profile.model_name} under {profile.format_name} ({profile.value_campaign.location})",
    )


def fault_pattern_table(campaign: CampaignResult, group: str = "len") -> str:
    """Per-fault-pattern breakdown of a campaign's layers.

    ``group="len"`` tabulates per-burst-length statistics (``len1``,
    ``len2``, ``len4`` — the flipped-bit count of each record);
    ``group="start"`` tabulates multi-bit faults by their start (alignment)
    position.  Groups come from
    :attr:`~repro.core.campaign.LayerCampaignResult.by_pattern`, which the
    aggregator fills for every campaign regardless of fault model.
    """
    if group not in ("len", "start"):
        raise ValueError(f"group must be 'len' or 'start', got {group!r}")
    patterns: list[str] = []
    for result in campaign.per_layer.values():
        for key in result.by_pattern:
            if key.startswith(group) and key not in patterns:
                patterns.append(key)
    patterns.sort(key=lambda k: int(k[len(group):]))
    rows = []
    for layer, result in campaign.per_layer.items():
        row = [layer]
        for key in patterns:
            stats = result.by_pattern.get(key)
            row.append(f"{stats['sdc_rate']:.3f}/{stats['mean_delta_loss']:.3f}"
                       if stats else "n/a")
        rows.append(tuple(row))
    return render_table(
        ["layer"] + [f"{p} (SDC/ΔLoss)" for p in patterns],
        rows,
        title=f"{campaign.format_name} {campaign.kind} faults by "
              f"{'bit count' if group == 'len' else 'start position'}",
    )
