"""Adversarial robustness as a function of the number format (§V-D).

The paper's future-direction use case: "GoldenEye can be used to simulate
different number formats for a given adversarial attack, and be used to
assess the attack's efficacy (or lack thereof)."  This module implements it:

* :func:`fgsm_attack` / :func:`pgd_attack` — white-box gradient attacks built
  on the substrate's autograd;
* :func:`attack_success_by_format` — craft adversarial examples against the
  native FP32 model, then measure how well they transfer to the same model
  running under each emulated number format.  Quantization acts as a (weak)
  input-gradient masker, so low-precision formats typically blunt part of the
  attack — the effect this tool quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.goldeneye import GoldenEye
from ..nn import functional as F
from ..nn.tensor import Tensor
from .tables import render_table

__all__ = ["AttackResult", "fgsm_attack", "pgd_attack", "attack_success_by_format"]


@dataclass(frozen=True)
class AttackResult:
    """Attack efficacy under one number format."""

    format_name: str
    clean_accuracy: float
    adversarial_accuracy: float

    @property
    def attack_success_rate(self) -> float:
        """Fraction of accuracy destroyed by the attack."""
        if self.clean_accuracy == 0:
            return 0.0
        return max(0.0, (self.clean_accuracy - self.adversarial_accuracy)
                   / self.clean_accuracy)


def _input_gradient(model: nn.Module, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
    x = Tensor(np.asarray(images, dtype=np.float32), requires_grad=True)
    model.eval()
    loss = F.cross_entropy(model(x), labels)
    loss.backward()
    return x.grad


def fgsm_attack(model: nn.Module, images: np.ndarray, labels: np.ndarray,
                epsilon: float = 0.05) -> np.ndarray:
    """Fast Gradient Sign Method: one signed-gradient step of size epsilon."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    grad = _input_gradient(model, images, labels)
    return (images + epsilon * np.sign(grad)).astype(np.float32)


def pgd_attack(model: nn.Module, images: np.ndarray, labels: np.ndarray,
               epsilon: float = 0.05, step_size: float | None = None,
               steps: int = 5) -> np.ndarray:
    """Projected Gradient Descent within an L-inf ball of radius epsilon."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    step_size = step_size if step_size is not None else 2.5 * epsilon / steps
    adversarial = np.asarray(images, dtype=np.float32).copy()
    for _ in range(steps):
        grad = _input_gradient(model, adversarial, labels)
        adversarial = adversarial + step_size * np.sign(grad)
        adversarial = np.clip(adversarial, images - epsilon, images + epsilon)
    return adversarial.astype(np.float32)


def _accuracy_under_format(model: nn.Module, images: np.ndarray, labels: np.ndarray,
                           spec, targets) -> float:
    model.eval()
    if spec == "native":
        with nn.no_grad():
            logits = model(Tensor(images))
        return float((logits.argmax(axis=-1) == labels).mean())
    with GoldenEye(model, spec, targets=targets):
        with nn.no_grad():
            logits = model(Tensor(images))
    return float((logits.argmax(axis=-1) == labels).mean())


def attack_success_by_format(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    formats: tuple = ("native", "fp16", "fp8", "int8", "bfp_e5m5_b16", "afp_e4m3"),
    epsilon: float = 0.05,
    attack: str = "fgsm",
    targets=("conv", "linear"),
) -> list[AttackResult]:
    """Craft an attack on the FP32 model; evaluate it under each format."""
    if attack == "fgsm":
        adversarial = fgsm_attack(model, images, labels, epsilon=epsilon)
    elif attack == "pgd":
        adversarial = pgd_attack(model, images, labels, epsilon=epsilon)
    else:
        raise ValueError(f"unknown attack {attack!r}; use 'fgsm' or 'pgd'")
    results = []
    for spec in formats:
        clean = _accuracy_under_format(model, images, labels, spec, targets)
        adv = _accuracy_under_format(model, adversarial, labels, spec, targets)
        name = spec if isinstance(spec, str) else spec.name
        results.append(AttackResult(format_name=name, clean_accuracy=clean,
                                    adversarial_accuracy=adv))
    return results


def attack_table(results: list[AttackResult], attack: str, epsilon: float) -> str:
    """Render attack-efficacy results as an ASCII table."""
    rows = [(r.format_name, f"{r.clean_accuracy:.3f}", f"{r.adversarial_accuracy:.3f}",
             f"{r.attack_success_rate:.2%}") for r in results]
    return render_table(
        ["format", "clean accuracy", "adversarial accuracy", "attack success"],
        rows, title=f"{attack.upper()} (eps={epsilon}) efficacy vs number format")
