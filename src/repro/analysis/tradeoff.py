"""Accuracy / resilience / bitwidth tradeoff exploration (Fig. 9, §V-A).

Combines the DSE heuristic (use case 2) with resilience campaigns (use case
3): for each accuracy-acceptable design point the heuristic suggests, measure
the network-average ΔLoss under value and metadata injections, yielding the
scatter of (bitwidth, accuracy, ΔLoss) points from which an accelerator
designer picks the format that fits their budget — the paper's top-left
corner being low-precision, high-accuracy, low-ΔLoss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dse import DseResult, binary_tree_search
from ..nn.module import Module
from .resilience import profile_resilience
from .tables import render_table

__all__ = ["TradeoffPoint", "TradeoffStudy", "explore_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One design point of the Fig. 9 scatter."""

    format_name: str
    family: str
    bitwidth: int
    accuracy: float
    value_delta_loss: float
    metadata_delta_loss: float

    @property
    def combined_delta_loss(self) -> float:
        return float(np.mean([self.value_delta_loss, self.metadata_delta_loss]))


@dataclass
class TradeoffStudy:
    """All evaluated points plus the DSE traces that produced them."""

    model_name: str
    baseline_accuracy: float
    points: list[TradeoffPoint]
    dse_results: dict[str, DseResult]

    def pareto_front(self) -> list[TradeoffPoint]:
        """Points not dominated in (bitwidth, -accuracy, combined ΔLoss)."""
        front = []
        for p in self.points:
            dominated = any(
                q is not p
                and q.bitwidth <= p.bitwidth
                and q.accuracy >= p.accuracy
                and q.combined_delta_loss <= p.combined_delta_loss
                and (q.bitwidth, -q.accuracy, q.combined_delta_loss)
                != (p.bitwidth, -p.accuracy, p.combined_delta_loss)
                for q in self.points
            )
            if not dominated:
                front.append(p)
        return front

    def table(self) -> str:
        rows = [
            (p.format_name, p.bitwidth, f"{p.accuracy:.3f}",
             f"{p.value_delta_loss:.4f}", f"{p.metadata_delta_loss:.4f}",
             f"{p.combined_delta_loss:.4f}")
            for p in sorted(self.points, key=lambda p: (p.bitwidth, -p.accuracy))
        ]
        return render_table(
            ["format", "bits", "accuracy", "ΔLoss value", "ΔLoss metadata", "ΔLoss avg"],
            rows,
            title=f"{self.model_name} accuracy/resilience/bitwidth tradeoff "
                  f"(baseline accuracy {self.baseline_accuracy:.3f})",
        )


def explore_tradeoff(
    model: Module,
    model_name: str,
    images: np.ndarray,
    labels: np.ndarray,
    families: tuple[str, ...] = ("bfp", "afp"),
    threshold: float = 0.01,
    injections_per_layer: int = 50,
    max_points_per_family: int = 4,
    campaign_samples: int = 32,
    seed: int = 0,
) -> TradeoffStudy:
    """Run DSE per family, then campaigns on the acceptable design points."""
    points: list[TradeoffPoint] = []
    dse_results: dict[str, DseResult] = {}
    baseline = None
    for family in families:
        dse = binary_tree_search(model, images, labels, family=family,
                                 threshold=threshold, baseline_accuracy=baseline)
        baseline = dse.baseline_accuracy  # reuse the profiling pass
        dse_results[family] = dse
        # dedupe acceptable nodes by format config, cheapest first
        chosen: dict = {}
        for node in sorted(dse.acceptable_nodes, key=lambda n: (n.bitwidth, n.radix)):
            chosen.setdefault(node.format.config().__repr__(), node)
        for node in list(chosen.values())[:max_points_per_family]:
            profile = profile_resilience(
                model, model_name, node.format,
                images[:campaign_samples], labels[:campaign_samples],
                injections_per_layer=injections_per_layer, seed=seed,
            )
            points.append(TradeoffPoint(
                format_name=node.format.name,
                family=family,
                bitwidth=node.bitwidth,
                accuracy=node.accuracy,
                value_delta_loss=profile.network_value_delta_loss(),
                metadata_delta_loss=profile.network_metadata_delta_loss(),
            ))
    return TradeoffStudy(
        model_name=model_name,
        baseline_accuracy=baseline if baseline is not None else 0.0,
        points=points,
        dse_results=dse_results,
    )
