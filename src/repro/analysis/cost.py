"""MAC-count and bitwidth-based hardware cost proxies (§V-C).

GoldenEye is not a cycle-accurate simulator; the paper notes that "users can
potentially use proxies such as number of MAC operations and expected MAC
area for runtime".  This module provides those proxies:

* :func:`count_macs` — per-layer multiply-accumulate counts for a model at a
  given input shape (conv via output-pixel × kernel volume, linear via the
  weight matrix, attention via its two batched matmuls);
* :func:`mac_cost` — a bitwidth-dependent relative cost per MAC.  Multiplier
  area/energy scales roughly quadratically with operand width and adder cost
  linearly, which is the standard first-order model used in accelerator
  design-space sketches;
* :func:`model_cost` — combine both into one relative energy/area figure for
  a (model, format assignment) pair, so DSE results can be ranked by hardware
  cost instead of raw bitwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.goldeneye import GoldenEye
from ..formats.base import NumberFormat
from ..formats.bfp import BlockFloatingPoint
from ..formats.registry import make_format
from ..nn.tensor import Tensor
from .tables import render_table

__all__ = ["LayerCost", "count_macs", "mac_cost", "model_cost", "cost_table"]


@dataclass(frozen=True)
class LayerCost:
    """MACs and relative cost of one instrumented layer."""

    layer: str
    macs: int
    bit_width: int
    relative_cost: float


def count_macs(model: nn.Module, input_shape: tuple[int, ...],
               targets=("conv", "linear")) -> dict[str, int]:
    """Per-layer MAC counts for one inference at ``input_shape`` (no batch).

    Uses shape-recording hooks, so any architecture expressible on the
    substrate is supported without per-layer formulas drifting out of sync.
    """
    macs: dict[str, int] = {}
    handles = []

    def make_hook(name: str, module: nn.Module):
        def hook(mod, inputs, output):
            if isinstance(mod, nn.Conv2d):
                _, _, oh, ow = output.shape
                kernel_volume = (mod.in_channels // mod.groups) * mod.kernel_size ** 2
                macs[name] = macs.get(name, 0) + oh * ow * mod.out_channels * kernel_volume
            elif isinstance(mod, nn.Linear):
                # one MAC per (position, in_feature, out_feature)
                positions = int(np.prod(output.shape[:-1]))
                macs[name] = (macs.get(name, 0)
                              + positions * mod.in_features * mod.out_features)

        return hook

    platform = GoldenEye(model, "fp32", targets=targets, quantize_weights=False,
                         quantize_neurons=False)
    for name, state in platform.layers.items():
        handles.append(state.module.register_forward_hook(make_hook(name, state.module)))
    model.eval()
    with nn.no_grad():
        model(Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32)))
    for handle in handles:
        handle.remove()
    return macs


def mac_cost(fmt: NumberFormat | str) -> float:
    """Relative per-MAC cost of a format, normalized to FP32 = 1.0.

    First-order model: multiplier cost ~ (multiplicand width)^2, accumulator
    cost ~ linear.  For FP-like formats the multiplicand is the mantissa (+
    implicit one) and the exponent adds a small adder; BFP multiplies plain
    mantissas and amortizes one shared exponent per block; INT/FxP multiply
    the full word.
    """
    fmt = make_format(fmt) if isinstance(fmt, str) else fmt
    kind = fmt.kind
    if kind in ("fp", "afp"):
        mant = fmt.mantissa_bits + 1
        exp = fmt.exp_bits
        raw = mant * mant + 2 * exp
    elif kind == "bfp":
        mant = fmt.mantissa_bits
        amortized_exp = fmt.exp_bits / (fmt.block_size or 64)
        raw = mant * mant + 2 * amortized_exp
    elif kind in ("fxp", "int"):
        width = fmt.bit_width
        raw = width * width
    elif kind == "posit":
        # decoded operands behave like (n - 2 - es)-bit mantissas plus
        # regime/exponent handling comparable to an FP exponent path
        mant = max(fmt.n - 2 - fmt.es, 1)
        raw = mant * mant + 2 * (fmt.es + 2)
    else:
        raw = fmt.bit_width * fmt.bit_width
    fp32 = 24 * 24 + 2 * 8
    return raw / fp32


def model_cost(
    model: nn.Module,
    input_shape: tuple[int, ...],
    assignment,
    targets=("conv", "linear"),
) -> list[LayerCost]:
    """Relative cost per layer under a uniform spec or per-layer mapping."""
    macs = count_macs(model, input_shape, targets=targets)
    costs = []
    for layer, layer_macs in macs.items():
        spec = assignment.get(layer) if isinstance(assignment, dict) else assignment
        if spec is None:
            spec = "fp32"
        fmt = make_format(spec)
        costs.append(LayerCost(
            layer=layer,
            macs=layer_macs,
            bit_width=fmt.bit_width,
            relative_cost=layer_macs * mac_cost(fmt),
        ))
    return costs


def cost_table(costs: list[LayerCost], title: str = "relative MAC cost") -> str:
    """Render per-layer costs plus a total row as an ASCII table."""
    total = sum(c.relative_cost for c in costs)
    rows = [(c.layer, f"{c.macs:,}", c.bit_width, f"{c.relative_cost:,.0f}")
            for c in costs]
    rows.append(("TOTAL", f"{sum(c.macs for c in costs):,}", "-", f"{total:,.0f}"))
    return render_table(["layer", "MACs", "element bits", "relative cost"],
                        rows, title=title)
