"""Plain-text table and series rendering used by the benchmark harnesses.

The benchmarks regenerate the paper's tables and figures as text: tables
render with aligned columns, figures render as labelled data series (the same
rows/series the paper plots).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_float"]


def format_float(value: float, precision: int = 4) -> str:
    """Compact float formatting: scientific for extreme magnitudes."""
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 10 ** -precision:
        return f"{value:.{max(precision - 2, 2)}e}"
    return f"{value:.{precision}g}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Iterable[tuple], x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render one figure series as labelled (x, y) pairs."""
    lines = [f"series: {name} [{x_label} -> {y_label}]"]
    for x, y in points:
        y_text = format_float(y) if isinstance(y, float) else str(y)
        lines.append(f"  {x}: {y_text}")
    return "\n".join(lines)
