"""Per-layer (mixed) format assignment — the §V-C extension, implemented.

The paper lists mixed precision as future work at the *arithmetic* level
(accumulation/rounding across data types inside a MAC).  At the *assignment*
level, however, GoldenEye's per-layer hooks make a mixed-format network
directly expressible: each layer carries its own format instance.  This
module adds the natural search on top: profile each layer's quantization
sensitivity, then greedily assign the cheapest format that keeps the
end-to-end accuracy within a threshold — the layer-wise analogue of the
paper's use case 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dse import evaluate_format_accuracy
from ..core.goldeneye import GoldenEye
from ..nn.module import Module
from ..nn.tensor import Tensor
from .. import nn
from .tables import render_table

__all__ = ["LayerSensitivity", "MixedPrecisionResult", "profile_layer_sensitivity",
           "assign_mixed_precision"]


@dataclass(frozen=True)
class LayerSensitivity:
    """Accuracy when only this layer runs in the candidate format."""

    layer: str
    format_name: str
    accuracy: float


@dataclass
class MixedPrecisionResult:
    """Outcome of the greedy mixed-precision assignment."""

    assignment: dict[str, str]
    accuracy: float
    baseline_accuracy: float
    mean_bits: float
    sensitivities: list[LayerSensitivity] = field(default_factory=list)

    def table(self) -> str:
        rows = [(layer, spec) for layer, spec in self.assignment.items()]
        return render_table(
            ["layer", "assigned format"], rows,
            title=(f"mixed-precision assignment: accuracy {self.accuracy:.3f} "
                   f"(baseline {self.baseline_accuracy:.3f}), "
                   f"mean element width {self.mean_bits:.1f} bits"))


def _native_accuracy(model: Module, images: np.ndarray, labels: np.ndarray) -> float:
    model.eval()
    with nn.no_grad():
        logits = model(Tensor(images))
    return float((logits.argmax(axis=-1) == labels).mean())


def profile_layer_sensitivity(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    candidate: str,
    targets=("conv", "linear"),
) -> list[LayerSensitivity]:
    """Accuracy with exactly one layer at a time emulated in ``candidate``.

    A layer whose solo emulation hurts accuracy is *sensitive* and should
    keep a wider format in a mixed assignment.
    """
    layer_names = GoldenEye(model, "fp32", targets=targets).layer_names()
    out = []
    for name in layer_names:
        accuracy = evaluate_format_accuracy(model, images, labels,
                                            {name: candidate}, targets=targets)
        out.append(LayerSensitivity(layer=name, format_name=candidate,
                                    accuracy=accuracy))
    return out


def assign_mixed_precision(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    cheap: str = "fp_e4m3",
    expensive: str = "fp16",
    threshold: float = 0.01,
    targets=("conv", "linear"),
) -> MixedPrecisionResult:
    """Greedy per-layer assignment: ``cheap`` where it is free, else ``expensive``.

    Layers are visited from least to most sensitive (by solo-emulation
    accuracy); each is downgraded to ``cheap`` and kept there only if the
    *end-to-end* accuracy of the partial assignment stays within
    ``threshold`` of baseline.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be a fraction in (0, 1)")
    baseline = _native_accuracy(model, images, labels)
    floor = baseline - threshold
    sensitivities = profile_layer_sensitivity(model, images, labels, cheap,
                                              targets=targets)
    order = sorted(sensitivities, key=lambda s: -s.accuracy)  # most robust first
    assignment = {s.layer: expensive for s in sensitivities}
    for s in order:
        trial = dict(assignment)
        trial[s.layer] = cheap
        accuracy = evaluate_format_accuracy(model, images, labels, trial,
                                            targets=targets)
        if accuracy >= floor:
            assignment = trial
    final_accuracy = evaluate_format_accuracy(model, images, labels, assignment,
                                              targets=targets)
    from ..formats import make_format
    widths = [make_format(spec).bit_width for spec in assignment.values()]
    return MixedPrecisionResult(
        assignment=assignment,
        accuracy=final_accuracy,
        baseline_accuracy=baseline,
        mean_bits=float(np.mean(widths)),
        sensitivities=sensitivities,
    )
