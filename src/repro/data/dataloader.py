"""Mini-batch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(Tensor images, ndarray labels)`` batches over arrays.

    Shuffling is driven by an internal generator seeded at construction, so a
    loader replays the identical batch sequence when re-seeded — important for
    reproducible fault-injection campaigns.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = False,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) disagree")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.images)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[Tensor, np.ndarray]]:
        order = np.arange(len(self.images))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield Tensor(self.images[idx]), self.labels[idx]
