"""A deterministic synthetic stand-in for the ImageNet validation set.

The paper evaluates pretrained ImageNet classifiers; offline we need a vision
task that (a) is non-trivial, (b) is learnable by both small CNNs and small
vision transformers, and (c) yields a graded accuracy signal so that number
format degradation and fault injection produce measurable mismatches / ΔLoss.

Each class is defined by a smooth random "texture" template (low-pass filtered
noise).  A sample is its class template under a random gain, a random circular
shift, and additive noise.  With the default signal-to-noise settings a small
ResNet reaches high-but-not-perfect accuracy after a couple of epochs, and the
per-class score margins are small enough that quantization error moves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyntheticImageNet", "make_splits"]


def _smooth_field(rng: np.random.Generator, channels: int, size: int, cutoff: int) -> np.ndarray:
    """Generate a smooth random field via low-pass filtering in Fourier space."""
    noise = rng.standard_normal((channels, size, size))
    spectrum = np.fft.fft2(noise)
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    mask = (np.abs(fy) <= cutoff / size) & (np.abs(fx) <= cutoff / size)
    smooth = np.real(np.fft.ifft2(spectrum * mask))
    smooth /= np.abs(smooth).max() + 1e-12
    return smooth.astype(np.float32)


@dataclass
class SyntheticImageNet:
    """Deterministic synthetic image classification dataset.

    Parameters
    ----------
    num_classes:
        Number of target classes.
    num_samples:
        Total samples generated (balanced across classes).
    image_size:
        Side length of the square RGB images.
    noise_std:
        Std-dev of the additive per-sample Gaussian noise (in template units).
    seed:
        Every array this dataset produces is a pure function of the seed.
    """

    num_classes: int = 10
    num_samples: int = 800
    image_size: int = 32
    channels: int = 3
    noise_std: float = 0.4
    max_shift: int = 2
    seed: int = 0
    images: np.ndarray = field(init=False, repr=False)
    labels: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.num_samples < self.num_classes:
            raise ValueError("need at least one sample per class")
        rng = np.random.default_rng(self.seed)
        cutoff = max(2, self.image_size // 5)
        templates = np.stack(
            [_smooth_field(rng, self.channels, self.image_size, cutoff=cutoff)
             for _ in range(self.num_classes)]
        )
        labels = np.arange(self.num_samples) % self.num_classes
        rng.shuffle(labels)
        images = np.empty(
            (self.num_samples, self.channels, self.image_size, self.image_size),
            dtype=np.float32,
        )
        for i, label in enumerate(labels):
            gain = rng.uniform(0.7, 1.3)
            dy, dx = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
            sample = np.roll(templates[label] * gain, shift=(dy, dx), axis=(1, 2))
            sample = sample + rng.standard_normal(sample.shape).astype(np.float32) * self.noise_std
            images[i] = sample
        # Standardize like ImageNet preprocessing (zero mean, unit variance).
        mean = images.mean(axis=(0, 2, 3), keepdims=True)
        std = images.std(axis=(0, 2, 3), keepdims=True) + 1e-6
        self.images = ((images - mean) / std).astype(np.float32)
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def subset(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(images, labels)`` arrays for the given indices."""
        indices = np.asarray(indices)
        return self.images[indices], self.labels[indices]


def make_splits(
    dataset: SyntheticImageNet, train_fraction: float = 0.75, seed: int = 1234
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Deterministically split a dataset into (train, validation) arrays."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(len(dataset) * train_fraction)
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])
