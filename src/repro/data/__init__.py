"""``repro.data`` — synthetic dataset, batching, and train-and-cache helpers."""

from .dataloader import DataLoader
from .synthimagenet import SyntheticImageNet, make_splits
from .trainer import (
    TrainResult,
    default_cache_dir,
    evaluate_accuracy,
    get_pretrained,
    recalibrate_batchnorm,
    train,
)

__all__ = [
    "DataLoader",
    "SyntheticImageNet",
    "make_splits",
    "TrainResult",
    "train",
    "evaluate_accuracy",
    "get_pretrained",
    "recalibrate_batchnorm",
    "default_cache_dir",
]
