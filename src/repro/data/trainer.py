"""Training loop and a train-once/cache-weights helper.

The paper uses pretrained ImageNet checkpoints; our substitute trains small
models on :class:`~repro.data.synthimagenet.SyntheticImageNet` and caches the
resulting weights on disk, so benchmark runs after the first are as cheap as
loading a checkpoint.
"""

from __future__ import annotations

import hashlib
import inspect
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import nn
from ..nn import functional as F
from ..models.registry import create_model
from .dataloader import DataLoader
from .synthimagenet import SyntheticImageNet, make_splits

__all__ = ["TrainResult", "train", "evaluate_accuracy", "get_pretrained", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Weight-cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro_goldeneye"


@dataclass
class TrainResult:
    """Outcome of a training run."""

    model: nn.Module
    train_accuracy: float
    val_accuracy: float
    losses: list[float]


def recalibrate_batchnorm(model: nn.Module, data: tuple[np.ndarray, np.ndarray],
                          batch_size: int = 64) -> None:
    """Re-estimate BatchNorm running statistics with a cumulative average.

    During short training runs the exponential running statistics lag the
    rapidly-moving activations, which hurts eval-mode accuracy.  This pass
    replays the training data in train mode (no grad) with per-batch momentum
    ``1/(i+1)``, i.e. an exact cumulative moving average of the batch stats.
    """
    bn_layers = [m for m in model.modules() if isinstance(m, nn.BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn._buffers["running_mean"][:] = 0.0
        bn._buffers["running_var"][:] = 0.0
    model.train()
    loader = DataLoader(*data, batch_size=batch_size)
    with nn.no_grad():
        for i, (images, _) in enumerate(loader):
            for bn in bn_layers:
                bn.momentum = 1.0 / (i + 1)
            model(images)
    for bn in bn_layers:
        bn.momentum = 0.1
    model.eval()


def evaluate_accuracy(model: nn.Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over ``loader`` (no-grad, eval mode)."""
    model.eval()
    correct = 0
    total = 0
    with nn.no_grad():
        for images, labels in loader:
            logits = model(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
    return correct / max(total, 1)


def train(
    model: nn.Module,
    train_data: tuple[np.ndarray, np.ndarray],
    val_data: tuple[np.ndarray, np.ndarray],
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
    verbose: bool = False,
) -> TrainResult:
    """Train ``model`` with Adam + cross-entropy; return accuracies and losses."""
    train_loader = DataLoader(*train_data, batch_size=batch_size, shuffle=True, seed=seed)
    val_loader = DataLoader(*val_data, batch_size=batch_size)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    for epoch in range(epochs):
        model.train()
        epoch_loss = 0.0
        batches = 0
        for images, labels in train_loader:
            optimizer.zero_grad()
            logits = model(images)
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss={losses[-1]:.4f}")
    recalibrate_batchnorm(model, train_data, batch_size=batch_size)
    train_accuracy = evaluate_accuracy(model, DataLoader(*train_data, batch_size=batch_size))
    val_accuracy = evaluate_accuracy(model, val_loader)
    return TrainResult(model=model, train_accuracy=train_accuracy,
                       val_accuracy=val_accuracy, losses=losses)


def _cache_key(model_name: str, dataset: SyntheticImageNet, epochs: int, seed: int) -> str:
    spec = (
        f"{model_name}-c{dataset.num_classes}-n{dataset.num_samples}-s{dataset.image_size}"
        f"-noise{dataset.noise_std}-dseed{dataset.seed}-e{epochs}-tseed{seed}"
    )
    digest = hashlib.sha1(spec.encode()).hexdigest()[:12]
    return f"{model_name}-{digest}"


def get_pretrained(
    model_name: str,
    dataset: SyntheticImageNet | None = None,
    epochs: int = 4,
    seed: int = 0,
    cache_dir: Path | str | None = None,
    **model_kwargs,
) -> tuple[nn.Module, tuple[np.ndarray, np.ndarray]]:
    """Return ``(trained model, validation split)``, training on a cache miss.

    The validation split is what the paper's case studies sweep over; it is a
    pure function of the dataset seed, so every experiment sees the same data.
    """
    dataset = dataset or SyntheticImageNet()
    factory_kwargs = dict(num_classes=dataset.num_classes, seed=seed, **model_kwargs)
    from ..models.registry import MODEL_REGISTRY
    factory = MODEL_REGISTRY[model_name]  # KeyError surfaces the bad name early
    params = inspect.signature(factory).parameters
    if "image_size" in params:
        factory_kwargs["image_size"] = dataset.image_size
    model = create_model(model_name, **factory_kwargs)
    train_split, val_split = make_splits(dataset)
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{_cache_key(model_name, dataset, epochs, seed)}.npz"
    if path.exists():
        nn.load_model(model, path)
        model.eval()
        return model, val_split
    result = train(model, train_split, val_split, epochs=epochs, seed=seed)
    nn.save_model(result.model, path)
    model.eval()
    return model, val_split
