"""Resilience metrics: classic *mismatch* counting and the faster *ΔLoss*.

The paper adopts two metrics (§IV-C):

* **mismatch** — how many error-injected inferences changed the predicted
  class relative to the error-free inference [26];
* **ΔLoss** [25] — the average absolute difference of the cross-entropy loss
  between the faulty and error-free inferences.  Both converge to the same
  ranking, but ΔLoss converges asymptotically faster because it compares a
  continuous value instead of a binary outcome, which is what makes
  GoldenEye's fast injection campaigns possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "softmax_probs",
    "cross_entropy_values",
    "mismatch_count",
    "mismatch_rate",
    "delta_loss",
    "sdc_classify",
    "InferenceOutcome",
    "compare_outcomes",
]


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a (batch, classes) logits array (stable).

    Non-finite logits — possible after an injected fault — are handled
    explicitly: a ``+inf`` entry saturates (it takes the row's probability
    mass, split evenly if several entries are ``+inf``) and ``NaN`` entries
    get probability zero, so downstream metrics never see NaN probabilities.
    """
    logits = np.asarray(logits, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        shifted = logits - logits.max(axis=-1, keepdims=True)
    if not np.isfinite(logits).all():
        # +inf - +inf = NaN: the saturated entry should dominate (shift 0);
        # a NaN logit should contribute nothing (shift -inf).
        shifted = np.where(np.isposinf(logits), 0.0, shifted)
        shifted = np.where(np.isnan(shifted), -np.inf, shifted)
    e = np.exp(shifted)
    denom = e.sum(axis=-1, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)  # all-NaN row -> all-zero probs
    return e / denom


def cross_entropy_values(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample cross-entropy loss values (the quantity behind ΔLoss).

    NaN/inf logits (possible after an injected fault) produce the maximal
    loss contribution rather than propagating NaN into campaign averages.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    finite = np.isfinite(logits)
    if not finite.all():
        # replace non-finite entries with the most pessimistic finite values
        big = 1e4
        logits = np.where(np.isnan(logits), -big, logits)
        logits = np.clip(logits, -big, big)
    probs = softmax_probs(logits)
    picked = probs[np.arange(len(labels)), labels]
    return -np.log(np.maximum(picked, 1e-300))


def mismatch_count(golden_logits: np.ndarray, faulty_logits: np.ndarray) -> int:
    """Number of samples whose argmax class changed between runs.

    A faulty row that is entirely NaN has no argmax at all — the output is
    unconditionally corrupted — so it always counts as a mismatch (previously
    the NaN→-inf substitution made argmax 0, silently masking the corruption
    whenever the golden prediction happened to be class 0).
    """
    golden = np.asarray(golden_logits)
    faulty = np.asarray(faulty_logits)
    if golden.shape != faulty.shape:
        raise ValueError(f"logit shapes differ: {golden.shape} vs {faulty.shape}")
    all_nan = np.isnan(faulty.astype(np.float64, copy=False)).all(axis=-1)
    with np.errstate(invalid="ignore"):
        faulty = np.nan_to_num(faulty, nan=-np.inf)
    changed = golden.argmax(axis=-1) != faulty.argmax(axis=-1)
    return int(np.count_nonzero(changed | all_nan))


def mismatch_rate(golden_logits: np.ndarray, faulty_logits: np.ndarray) -> float:
    """Fraction of samples whose prediction changed."""
    n = len(np.asarray(golden_logits))
    if n == 0:
        raise ValueError("empty batch")
    return mismatch_count(golden_logits, faulty_logits) / n


def delta_loss(golden_logits: np.ndarray, faulty_logits: np.ndarray,
               labels: np.ndarray) -> float:
    """Mean |CE(faulty) - CE(golden)| over the batch — the ΔLoss metric [25]."""
    golden = cross_entropy_values(golden_logits, labels)
    faulty = cross_entropy_values(faulty_logits, labels)
    return float(np.mean(np.abs(faulty - golden)))


def sdc_classify(golden_logits: np.ndarray, faulty_logits: np.ndarray,
                 labels: np.ndarray) -> dict[str, int]:
    """Classify per-sample injection outcomes.

    Returns counts of:

    * ``masked`` — prediction unchanged;
    * ``sdc`` — prediction changed and is now wrong (silent data corruption);
    * ``benign_flip`` — prediction changed but happens to be correct now.

    An all-NaN faulty row has no prediction: it is always ``changed`` and
    never "correct", so it lands in ``sdc`` (matching :func:`mismatch_count`).
    """
    golden_pred = np.asarray(golden_logits).argmax(axis=-1)
    faulty = np.asarray(faulty_logits)
    all_nan = np.isnan(faulty.astype(np.float64, copy=False)).all(axis=-1)
    with np.errstate(invalid="ignore"):
        faulty_pred = np.nan_to_num(faulty, nan=-np.inf).argmax(axis=-1)
    labels = np.asarray(labels)
    changed = (golden_pred != faulty_pred) | all_nan
    correct = (faulty_pred == labels) & ~all_nan
    return {
        "masked": int(np.count_nonzero(~changed)),
        "sdc": int(np.count_nonzero(changed & ~correct)),
        "benign_flip": int(np.count_nonzero(changed & correct)),
    }


@dataclass(frozen=True)
class InferenceOutcome:
    """Logits + labels of one inference run, ready for metric comparison."""

    logits: np.ndarray
    labels: np.ndarray

    @property
    def accuracy(self) -> float:
        with np.errstate(invalid="ignore"):
            preds = np.nan_to_num(self.logits, nan=-np.inf).argmax(axis=-1)
        return float(np.mean(preds == self.labels))

    @property
    def mean_loss(self) -> float:
        return float(np.mean(cross_entropy_values(self.logits, self.labels)))


def compare_outcomes(golden: InferenceOutcome, faulty: InferenceOutcome) -> dict[str, float]:
    """All supported metrics between a golden and a faulty run."""
    counts = sdc_classify(golden.logits, faulty.logits, golden.labels)
    total = len(golden.labels)
    return {
        "mismatches": float(counts["sdc"] + counts["benign_flip"]),
        "mismatch_rate": (counts["sdc"] + counts["benign_flip"]) / total,
        "delta_loss": delta_loss(golden.logits, faulty.logits, golden.labels),
        "sdc_rate": counts["sdc"] / total,
        "faulty_accuracy": faulty.accuracy,
        "golden_accuracy": golden.accuracy,
    }
