"""Resilience metrics: classic *mismatch* counting and the faster *ΔLoss*.

The paper adopts two metrics (§IV-C):

* **mismatch** — how many error-injected inferences changed the predicted
  class relative to the error-free inference [26];
* **ΔLoss** [25] — the average absolute difference of the cross-entropy loss
  between the faulty and error-free inferences.  Both converge to the same
  ranking, but ΔLoss converges asymptotically faster because it compares a
  continuous value instead of a binary outcome, which is what makes
  GoldenEye's fast injection campaigns possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "softmax_probs",
    "cross_entropy_values",
    "mismatch_count",
    "mismatch_rate",
    "delta_loss",
    "sdc_classify",
    "InferenceOutcome",
    "compare_outcomes",
]


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a (batch, classes) logits array (stable)."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy_values(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample cross-entropy loss values (the quantity behind ΔLoss).

    NaN/inf logits (possible after an injected fault) produce the maximal
    loss contribution rather than propagating NaN into campaign averages.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    finite = np.isfinite(logits)
    if not finite.all():
        # replace non-finite entries with the most pessimistic finite values
        big = 1e4
        logits = np.where(np.isnan(logits), -big, logits)
        logits = np.clip(logits, -big, big)
    probs = softmax_probs(logits)
    picked = probs[np.arange(len(labels)), labels]
    return -np.log(np.maximum(picked, 1e-300))


def mismatch_count(golden_logits: np.ndarray, faulty_logits: np.ndarray) -> int:
    """Number of samples whose argmax class changed between runs."""
    golden = np.asarray(golden_logits)
    faulty = np.asarray(faulty_logits)
    if golden.shape != faulty.shape:
        raise ValueError(f"logit shapes differ: {golden.shape} vs {faulty.shape}")
    with np.errstate(invalid="ignore"):
        faulty = np.nan_to_num(faulty, nan=-np.inf)
    return int(np.count_nonzero(golden.argmax(axis=-1) != faulty.argmax(axis=-1)))


def mismatch_rate(golden_logits: np.ndarray, faulty_logits: np.ndarray) -> float:
    """Fraction of samples whose prediction changed."""
    n = len(np.asarray(golden_logits))
    if n == 0:
        raise ValueError("empty batch")
    return mismatch_count(golden_logits, faulty_logits) / n


def delta_loss(golden_logits: np.ndarray, faulty_logits: np.ndarray,
               labels: np.ndarray) -> float:
    """Mean |CE(faulty) - CE(golden)| over the batch — the ΔLoss metric [25]."""
    golden = cross_entropy_values(golden_logits, labels)
    faulty = cross_entropy_values(faulty_logits, labels)
    return float(np.mean(np.abs(faulty - golden)))


def sdc_classify(golden_logits: np.ndarray, faulty_logits: np.ndarray,
                 labels: np.ndarray) -> dict[str, int]:
    """Classify per-sample injection outcomes.

    Returns counts of:

    * ``masked`` — prediction unchanged;
    * ``sdc`` — prediction changed and is now wrong (silent data corruption);
    * ``benign_flip`` — prediction changed but happens to be correct now.
    """
    golden_pred = np.asarray(golden_logits).argmax(axis=-1)
    with np.errstate(invalid="ignore"):
        faulty_pred = np.nan_to_num(np.asarray(faulty_logits), nan=-np.inf).argmax(axis=-1)
    labels = np.asarray(labels)
    changed = golden_pred != faulty_pred
    return {
        "masked": int(np.count_nonzero(~changed)),
        "sdc": int(np.count_nonzero(changed & (faulty_pred != labels))),
        "benign_flip": int(np.count_nonzero(changed & (faulty_pred == labels))),
    }


@dataclass(frozen=True)
class InferenceOutcome:
    """Logits + labels of one inference run, ready for metric comparison."""

    logits: np.ndarray
    labels: np.ndarray

    @property
    def accuracy(self) -> float:
        with np.errstate(invalid="ignore"):
            preds = np.nan_to_num(self.logits, nan=-np.inf).argmax(axis=-1)
        return float(np.mean(preds == self.labels))

    @property
    def mean_loss(self) -> float:
        return float(np.mean(cross_entropy_values(self.logits, self.labels)))


def compare_outcomes(golden: InferenceOutcome, faulty: InferenceOutcome) -> dict[str, float]:
    """All supported metrics between a golden and a faulty run."""
    counts = sdc_classify(golden.logits, faulty.logits, golden.labels)
    total = len(golden.labels)
    return {
        "mismatches": float(counts["sdc"] + counts["benign_flip"]),
        "mismatch_rate": (counts["sdc"] + counts["benign_flip"]) / total,
        "delta_loss": delta_loss(golden.logits, faulty.logits, golden.labels),
        "sdc_rate": counts["sdc"] / total,
        "faulty_accuracy": faulty.accuracy,
        "golden_accuracy": golden.accuracy,
    }
