"""Checkpoint-and-resume partial execution for injection campaigns.

A fault injected at layer *L* cannot change anything computed *before* L, so
re-running the whole network for every injection wastes the entire upstream
prefix — the inefficiency the PyTorchFI-extension work (Gräfe et al., 2023)
removes with intermediate-state checkpointing.  This module implements that
optimisation for GoldenEye:

* during the **golden** pass a :class:`ResumeSession` records, in execution
  order, the final (post-hook, i.e. quantized) output of every *leaf* module,
  storing the arrays in an :class:`ActivationCache` with an explicit memory
  budget and LRU eviction;
* for an injection at layer L the campaign calls
  :meth:`repro.core.goldeneye.GoldenEye.forward_from`, which re-runs the
  model under the session in *replay* mode: every leaf call that executed
  before L's first appearance returns its cached golden output (skipping the
  layer's compute, quantization hook and injection check entirely), while L
  and everything downstream execute normally — with the armed corruption
  applied by the usual hook machinery.

Correctness does not depend on the cache being complete: a cache miss (LRU
eviction, budget-skipped tensor) simply recomputes that one module with the
bit-exact inputs reconstructed from its replayed predecessors, and a
structural divergence (model edited between record and replay) permanently
falls back to full execution for the rest of the pass.  Resumed logits are
therefore always bit-identical to a full forward under the same plans.

Weight injections resume from the victim layer too: a corrupted weight (or
weight-metadata register) only affects the victim layer's own computation
and its downstream consumers, so the upstream prefix replays unchanged.

Forked workers
--------------
The parallel campaign executor (:mod:`repro.exec`) forks worker processes
*after* the golden pass is recorded, so every worker inherits a
copy-on-write copy of the cache for free.  A session is **owned** by the
process that recorded (or adopted) it: a forked worker must call
:meth:`ResumeSession.adopt` before replaying, which claims the inherited
cache and zeroes the inherited counters so each worker reports a clean
per-process delta that the supervisor can aggregate.

Shared-memory adoption
----------------------
Copy-on-write sharing still duplicates every page a worker touches, and a
worker that re-records silently diverges from the parent's golden state.
When the supervisor publishes the cache through
:mod:`repro.exec.shmcache`, workers call :meth:`ResumeSession.adopt_shared`
instead: the private cache is swapped for a
:class:`SharedActivationCache` — a read-only facade over the shared
segment with per-process :class:`CacheStats` — and **every write path
raises** :class:`ReadOnlyCacheError` (``recording()``, ``put``, ``clear``,
``drop``).  A worker bug that would have silently diverged per-worker
state now fails loudly.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..nn.module import COMPUTE, Module
from ..nn.tensor import Tensor
from ..obs.telemetry import MetricsRegistry, get_registry

__all__ = ["ActivationCache", "CacheStats", "ReadOnlyCacheError",
           "ResumeSession", "SharedActivationCache",
           "DEFAULT_CACHE_BUDGET", "publish_cache_metrics"]


class ReadOnlyCacheError(RuntimeError):
    """A write was attempted against a shared read-only activation cache."""

#: default activation-cache memory budget (bytes)
DEFAULT_CACHE_BUDGET = 256 * 1024 * 1024


@dataclass
class CacheStats:
    """Counters describing one session's cache behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    skipped: int = 0  # tensors larger than the whole budget, never stored
    replayed: int = 0  # leaf calls answered from cache during replay
    recomputed: int = 0  # leaf calls before the start index that had to re-run
    diverged: int = 0  # replay passes that fell back to full execution

    FIELDS = ("hits", "misses", "evictions", "skipped",
              "replayed", "recomputed", "diverged")

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.FIELDS}

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all lookups (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def replay_rate(self) -> float:
        """Fraction of pre-start leaf calls answered from cache."""
        total = self.replayed + self.recomputed
        return self.replayed / total if total else 0.0


def publish_cache_metrics(stats: CacheStats, cache: "ActivationCache | None" = None,
                          registry: MetricsRegistry | None = None,
                          prefix: str = "resume") -> dict:
    """Bridge :class:`CacheStats` into the metrics registry as live gauges.

    Exposes every raw counter plus the derived ``hit_rate`` / ``replay_rate``
    and — when ``cache`` is given — ``cache_bytes`` / ``cache_entries``.
    Returns the flat dict that was published (useful for CLI display and for
    round-trip tests).
    """
    registry = registry if registry is not None else get_registry()
    flat: dict[str, float] = dict(stats.as_dict())
    flat["hit_rate"] = stats.hit_rate
    flat["replay_rate"] = stats.replay_rate
    if cache is not None:
        flat["cache_bytes"] = cache.nbytes
        flat["cache_entries"] = len(cache)
    for key, value in flat.items():
        registry.gauge(f"{prefix}.{key}").set(float(value))
    return flat


class ActivationCache:
    """LRU cache of numpy arrays under an explicit byte budget.

    Keys are opaque (the session uses execution positions).  An array larger
    than the whole budget is never stored; inserting evicts least-recently
    used entries until the new array fits.  ``budget_bytes=None`` disables
    the limit (cache everything).
    """

    def __init__(self, budget_bytes: int | None = DEFAULT_CACHE_BUDGET):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0 or None, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[object, np.ndarray] = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        """Total bytes currently held."""
        return self._bytes

    def put(self, key, array: np.ndarray) -> bool:
        """Store ``array``; return False if it exceeds the whole budget."""
        size = array.nbytes
        if self.budget_bytes is not None and size > self.budget_bytes:
            self.stats.skipped += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        if self.budget_bytes is not None:
            while self._entries and self._bytes + size > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.stats.evictions += 1
        self._entries[key] = array
        self._bytes += size
        return True

    def get(self, key) -> np.ndarray | None:
        """Fetch ``key`` (refreshing its LRU position) or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def drop(self, key) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def entries(self):
        """Snapshot of ``(key, array)`` pairs in insertion (LRU) order.

        This is the export surface the shared-memory publisher
        (:func:`repro.exec.shmcache.SharedGoldenCache.publish`) packs into a
        segment; iteration order does not matter to consumers because every
        lookup goes through the keyed index.
        """
        return list(self._entries.items())


class SharedActivationCache:
    """Read-only :class:`ActivationCache` facade over a shared segment.

    Wraps any provider exposing ``array(key) -> ndarray | None``, ``keys()``,
    ``nbytes`` and ``__len__`` (in practice
    :class:`repro.exec.shmcache.SharedGoldenCache`).  Lookups hit the shared
    pages zero-copy; the :class:`CacheStats` are **per-process** so forked
    workers keep reporting clean deltas.  Every mutation path raises
    :class:`ReadOnlyCacheError` — a worker must never be able to silently
    diverge from the published golden state.
    """

    #: writes are structurally impossible; exposed for budget introspection
    budget_bytes = None

    def __init__(self, provider):
        self._provider = provider
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._provider)

    def __contains__(self, key) -> bool:
        return self._provider.array(key) is not None

    @property
    def nbytes(self) -> int:
        return int(self._provider.nbytes)

    def get(self, key) -> np.ndarray | None:
        entry = self._provider.array(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    # ------------------------------------------------------------------
    # write paths: refuse loudly instead of diverging silently
    # ------------------------------------------------------------------
    def _refuse(self, action: str):
        raise ReadOnlyCacheError(
            f"cannot {action} a shared read-only activation cache: the "
            "golden prefix is published once by the supervisor and mapped "
            "read-only into every worker; re-record in the owning process "
            "instead")

    def put(self, key, array) -> bool:
        self._refuse("put into")

    def drop(self, key) -> None:
        self._refuse("drop from")

    def clear(self) -> None:
        self._refuse("clear")


class ResumeSession:
    """One recorded golden pass over a model, replayable from any layer.

    Implements the replay-controller protocol consumed by
    :meth:`repro.nn.Module.forward_from` (``intercept`` / ``record``).  The
    session is keyed by *execution position*: the i-th leaf-module call of
    the recorded pass.  Position matching makes weight-shared modules (one
    module object executing several times) resume correctly — the start
    index of a layer is its module's **first** execution, so every execution
    of the victim recomputes.

    The session is only valid for the exact inputs of the recorded pass;
    record a new pass (``recording()``) whenever the evaluation batch
    changes.
    """

    def __init__(self, model: Module,
                 budget_bytes: int | None = DEFAULT_CACHE_BUDGET):
        self.model = model
        self.cache = ActivationCache(budget_bytes)
        self._leaf_ids = {
            id(m) for _, m in model.named_modules()
            if not any(True for _ in m.children())
        }
        #: module ids in recorded execution order (one entry per leaf call)
        self.order: list[int] = []
        #: id(module) -> first execution position
        self._first_index: dict[int, int] = {}
        self._mode = "idle"  # "idle" | "record" | "replay"
        self._pos = 0
        self._start = 0
        self._pass_diverged = False
        #: pid of the process that recorded (or adopted) this session
        self.owner_pid = os.getpid()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def recorded(self) -> bool:
        return bool(self.order)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def is_owner(self) -> bool:
        """True when the current process owns this session's cache."""
        return os.getpid() == self.owner_pid

    def adopt(self, reset_stats: bool = True) -> "ResumeSession":
        """Claim a fork-inherited session in a worker process.

        The recorded order and the (copy-on-write) activation cache stay
        valid after a fork, but ownership and counters do not: ``adopt``
        re-stamps :attr:`owner_pid` and — by default — resets the inherited
        :class:`CacheStats` so the worker reports a clean per-process delta
        (the parallel supervisor sums worker deltas into the campaign's
        ``resume_stats``).  Idempotent within the owning process.
        """
        already_owner = self.is_owner
        self.owner_pid = os.getpid()
        if reset_stats and not already_owner:
            self.cache.stats = CacheStats()
        return self

    def adopt_shared(self, provider) -> "ResumeSession":
        """Adopt this fork-inherited session against a shared golden cache.

        Replaces the inherited private :class:`ActivationCache` with a
        :class:`SharedActivationCache` over ``provider`` (a
        :class:`repro.exec.shmcache.SharedGoldenCache` or any object with
        the same read surface), re-stamps ownership and starts fresh
        per-process stats.  The recorded execution order stays valid — only
        the array storage moves to the shared segment.

        After adoption every write path raises :class:`ReadOnlyCacheError`:
        ``recording()`` (which must clear the cache) and any ``put`` fail
        loudly instead of silently diverging this worker's golden state
        from its siblings'.
        """
        self.owner_pid = os.getpid()
        if isinstance(provider, SharedActivationCache):
            self.cache = provider
        else:
            self.cache = SharedActivationCache(provider)
        return self

    def _require_owner(self, action: str) -> None:
        if not self.is_owner:
            raise RuntimeError(
                f"cannot {action} a ResumeSession owned by pid "
                f"{self.owner_pid} from pid {os.getpid()}; forked workers "
                "must call adopt() first")

    def start_index_for(self, module: Module) -> int | None:
        """First recorded execution position of ``module`` (None if absent)."""
        return self._first_index.get(id(module))

    def publish_metrics(self, registry: MetricsRegistry | None = None,
                        prefix: str = "resume") -> dict:
        """Publish this session's cache counters as registry gauges."""
        return publish_cache_metrics(self.stats, self.cache,
                                     registry=registry, prefix=prefix)

    # ------------------------------------------------------------------
    # replay-controller protocol (called from Module.__call__)
    # ------------------------------------------------------------------
    def intercept(self, module: Module, inputs):
        if self._mode != "replay" or self._pass_diverged:
            return COMPUTE
        if id(module) not in self._leaf_ids:
            return COMPUTE
        pos = self._pos
        self._pos += 1
        if pos >= self._start:
            return COMPUTE
        if pos >= len(self.order) or self.order[pos] != id(module):
            # model structure changed since the recording: stop trusting the
            # cache and finish this pass (and any until re-recorded) fully
            self._pass_diverged = True
            self.cache.stats.diverged += 1
            return COMPUTE
        cached = self.cache.get(pos)
        if cached is None:
            self.cache.stats.recomputed += 1
            return COMPUTE  # evicted / skipped: recompute with exact inputs
        self.cache.stats.replayed += 1
        return Tensor(cached)

    def record(self, module: Module, inputs, output) -> None:
        if self._mode != "record" or id(module) not in self._leaf_ids:
            return
        pos = self._pos
        self._pos += 1
        self.order.append(id(module))
        self._first_index.setdefault(id(module), pos)
        if isinstance(output, Tensor):
            self.cache.put(pos, output.data)

    # ------------------------------------------------------------------
    # pass scoping
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def recording(self):
        """Scope one golden forward pass; wipes any previous recording.

        Raises :class:`ReadOnlyCacheError` — before touching any session
        state — when the session was :meth:`adopt_shared`-ed against a
        shared read-only cache: workers replay, they never re-record.
        """
        self._require_owner("record into")
        self.cache.clear()  # shared read-only caches refuse here
        self.order.clear()
        self._first_index.clear()
        self._mode, self._pos = "record", 0
        try:
            yield self
        finally:
            self._mode = "idle"

    @contextlib.contextmanager
    def replaying(self, start_index: int):
        """Scope one resumed pass: replay leaf calls before ``start_index``."""
        self._require_owner("replay from")
        if not self.recorded:
            raise RuntimeError("no golden pass recorded; use recording() first")
        self._mode, self._pos, self._start = "replay", 0, int(start_index)
        self._pass_diverged = False
        try:
            yield self
        finally:
            self._mode = "idle"


class _BatchedReplay:
    """Replay controller that tiles the cached golden prefix across K lanes.

    A fault-axis batched pass (:meth:`repro.core.goldeneye.GoldenEye.
    forward_from_batched`) runs the model once over K stacked replicas of
    the evaluation batch.  Every replica shares the same golden prefix, so a
    cached activation recorded for the B-sample batch is replayed as its
    K-fold tile along axis 0 — one copy per lane, recorded once.  Replay
    decisions (position counting, start index, order checking, cache-miss
    recomputation) are exactly :meth:`ResumeSession.intercept`'s, and all
    counters fold into the owning session's :class:`CacheStats`, so one
    batched pass books the same hits/replays a single K=1 pass would.
    """

    def __init__(self, session: ResumeSession, start_index: int, lanes: int):
        session._require_owner("replay from")
        if not session.recorded:
            raise RuntimeError("no golden pass recorded; use recording() first")
        self._session = session
        self._start = int(start_index)
        self._lanes = int(lanes)
        self._pos = 0
        self._diverged = False

    def intercept(self, module: Module, inputs):
        session = self._session
        if self._diverged:
            return COMPUTE
        if id(module) not in session._leaf_ids:
            return COMPUTE
        pos = self._pos
        self._pos += 1
        if pos >= self._start:
            return COMPUTE
        if pos >= len(session.order) or session.order[pos] != id(module):
            self._diverged = True
            session.cache.stats.diverged += 1
            return COMPUTE
        cached = session.cache.get(pos)
        if cached is None:
            session.cache.stats.recomputed += 1
            return COMPUTE  # evicted / skipped: recompute with exact inputs
        session.cache.stats.replayed += 1
        tiled = np.tile(cached, (self._lanes,) + (1,) * (cached.ndim - 1))
        return Tensor(tiled)

    def record(self, module: Module, inputs, output) -> None:
        return None  # injected passes never re-record golden state
