"""Gradient error injection during training (the §V-C future direction).

The paper supports backpropagation through its number-format emulation but
notes that "the current infrastructure does not support error injection on
gradients. This is another direction we plan to take GoldenEye for modeling
errors during model training."  This module implements that direction on the
reproduction's substrate:

* a :class:`GradientInjector` arms single/multi-bit flips in named parameters'
  gradients, applied right after ``backward()`` (i.e. in the gradient buffer a
  real accelerator would hold before the optimizer reads it);
* gradients are interpreted in a configurable number format — flipping a bit
  of an FP32 gradient word by default, or of the emulated format's encoding —
  using the same ``real_to_format``/``format_to_real`` machinery as data
  injections;
* :func:`train_with_gradient_faults` runs the paper's §V-D "build resilient
  models" experiment shape: training loops with a per-step fault probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..formats.base import NumberFormat
from ..formats.bitstring import bits_to_float32, flip_bit, float32_to_bits
from ..formats.registry import make_format
from ..nn import functional as F
from ..nn.tensor import Tensor
from .injection import InjectionError

__all__ = ["GradientInjection", "GradientInjector", "train_with_gradient_faults",
           "FaultyTrainingResult"]


@dataclass(frozen=True)
class GradientInjection:
    """Flip ``bits`` of the gradient value at ``flat_index`` of ``parameter``."""

    parameter: str
    flat_index: int
    bits: tuple[int, ...]

    def __post_init__(self):
        if not self.bits:
            raise InjectionError("at least one bit position is required")
        if self.flat_index < 0:
            raise InjectionError("flat_index must be non-negative")


class GradientInjector:
    """Applies bit flips to parameter gradients between backward() and step().

    Parameters
    ----------
    model:
        The model whose parameter gradients are targeted.
    number_format:
        Format in which a gradient word is interpreted for the flip.  The
        default ``None`` means the FP32 compute-fabric word (the classic
        model).  Formats with tensor-level metadata capture it from the
        gradient tensor itself at injection time.
    """

    def __init__(self, model: nn.Module, number_format: str | NumberFormat | None = None):
        self.model = model
        self.format: NumberFormat | None = (
            make_format(number_format) if number_format is not None else None)
        self._params = dict(model.named_parameters())
        self._plans: list[GradientInjection] = []
        self.injections_applied = 0

    # ------------------------------------------------------------------
    def arm(self, *plans: GradientInjection) -> None:
        for plan in plans:
            if plan.parameter not in self._params:
                raise InjectionError(
                    f"unknown parameter {plan.parameter!r}; known: "
                    f"{', '.join(sorted(self._params))}")
            param = self._params[plan.parameter]
            if plan.flat_index >= param.data.size:
                raise InjectionError(
                    f"flat_index {plan.flat_index} out of range for "
                    f"{plan.parameter} with {param.data.size} elements")
            width = self.format.bit_width if self.format is not None else 32
            for b in plan.bits:
                if not 0 <= b < width:
                    raise InjectionError(f"bit {b} out of range for {width}-bit word")
            self._plans.append(plan)

    def disarm(self) -> None:
        self._plans.clear()

    @property
    def active(self) -> bool:
        return bool(self._plans)

    def sample(self, rng: np.random.Generator, parameter: str | None = None,
               num_bits: int = 1) -> GradientInjection:
        """Uniformly sample a gradient injection site."""
        names = sorted(self._params)
        name = parameter if parameter is not None else names[int(rng.integers(len(names)))]
        if name not in self._params:
            raise InjectionError(f"unknown parameter {name!r}")
        param = self._params[name]
        width = self.format.bit_width if self.format is not None else 32
        index = int(rng.integers(param.data.size))
        bits = tuple(sorted(rng.choice(width, size=num_bits, replace=False).tolist()))
        return GradientInjection(name, index, bits)

    # ------------------------------------------------------------------
    def apply(self) -> int:
        """Corrupt the armed gradient sites; call after ``backward()``.

        Returns the number of flips performed (plans whose parameter received
        no gradient this step are skipped, matching hardware where an unread
        buffer cannot be consumed).
        """
        performed = 0
        for plan in self._plans:
            param = self._params[plan.parameter]
            if param.grad is None:
                continue
            # index without reshape: the gradient buffer may be non-contiguous
            # (e.g. written through a transpose), and reshape would copy
            index = np.unravel_index(plan.flat_index, param.grad.shape)
            value = float(param.grad[index])
            if self.format is None:
                bits = float32_to_bits(value)
                for b in plan.bits:
                    bits = flip_bit(bits, b)
                corrupted = bits_to_float32(bits)
            else:
                # interpret the gradient tensor in the emulated format: its
                # metadata (scale/bias/shared exponents) comes from the
                # gradient itself, as a gradient buffer in that format would
                self.format.real_to_format_tensor(param.grad)
                from ..formats.bfp import BlockFloatingPoint
                if isinstance(self.format, BlockFloatingPoint):
                    block = plan.flat_index // self.format.metadata.block_size
                    bits = self.format.real_to_format(value, block=block)
                    for b in plan.bits:
                        bits = flip_bit(bits, b)
                    corrupted = self.format.format_to_real(bits, block=block)
                else:
                    bits = self.format.real_to_format(value)
                    for b in plan.bits:
                        bits = flip_bit(bits, b)
                    corrupted = self.format.format_to_real(bits)
            param.grad[index] = np.float32(corrupted)
            performed += 1
        self.injections_applied += performed
        return performed


@dataclass
class FaultyTrainingResult:
    """Outcome of a training run with gradient faults injected."""

    losses: list[float]
    final_accuracy: float
    faults_injected: int
    diverged: bool


def train_with_gradient_faults(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    epochs: int = 2,
    batch_size: int = 32,
    lr: float = 1e-3,
    fault_probability: float = 0.1,
    number_format: str | NumberFormat | None = None,
    seed: int = 0,
    clip_gradients: float | None = None,
    force_bit: int | None = None,
) -> FaultyTrainingResult:
    """Train under randomly-injected gradient bit flips.

    Each optimizer step suffers one random single-bit gradient flip with
    probability ``fault_probability``.  ``clip_gradients`` optionally bounds
    gradient magnitudes after injection — the natural software-directed
    protection for this error model (clipping masks exponent-bit blowups).
    ``force_bit`` pins the flipped bit position (e.g. 1 = the FP32 exponent
    MSB, the worst case) instead of sampling it uniformly.
    """
    if not 0.0 <= fault_probability <= 1.0:
        raise ValueError("fault_probability must be within [0, 1]")
    rng = np.random.default_rng(seed)
    injector = GradientInjector(model, number_format)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    faults = 0
    for _ in range(epochs):
        order = rng.permutation(len(images))
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            model.train()
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(images[idx])), labels[idx])
            loss.backward()
            if rng.random() < fault_probability:
                injector.disarm()
                plan = injector.sample(rng)
                if force_bit is not None:
                    plan = GradientInjection(plan.parameter, plan.flat_index,
                                             (force_bit,))
                injector.arm(plan)
                faults += injector.apply()
                injector.disarm()
            if clip_gradients is not None:
                for p in model.parameters():
                    if p.grad is not None:
                        np.clip(np.nan_to_num(p.grad, nan=0.0,
                                              posinf=clip_gradients,
                                              neginf=-clip_gradients),
                                -clip_gradients, clip_gradients, out=p.grad)
            optimizer.step()
            losses.append(loss.item())
    model.eval()
    with nn.no_grad():
        logits = model(Tensor(images))
    final_accuracy = float((logits.argmax(axis=-1) == labels).mean())
    diverged = bool(np.isnan(losses[-1]) or losses[-1] > 10 * max(losses[0], 1.0)
                    or not np.isfinite(logits.data).all())
    return FaultyTrainingResult(losses=losses, final_accuracy=final_accuracy,
                                faults_injected=faults, diverged=diverged)
