"""Error-injection engine: single- and multi-bit flips in values and metadata.

GoldenEye's injection routine is the abstract sequence the paper gives in
§III-B: call ``real_to_format`` (Method 3) on the victim value, flip bits in
the resulting bitstring, then call ``format_to_real`` (Method 4) and write the
corrupted value back.  Metadata injections instead flip bits in a format's
hardware register (shared exponent / scale factor / exponent bias) and
re-express the dependent values under the corrupted register — which is how a
"single-bit flip" in hardware becomes a multi-bit flip in value space.

Injection *locations*:

* ``"neuron"`` — the layer's output activations, corrupted during the forward
  pass (dynamic runtime support);
* ``"weight"`` — the layer's parameters, corrupted offline at arm time and
  restored at disarm.

When a layer has no emulated format (native FP32 fabric), value injections
flip bits of the IEEE-754 binary32 encoding — the classic PyTorchFI-style
single-bit-flip model.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..formats.base import NumberFormat
from ..formats.bfp import BlockFloatingPoint
from ..formats.bitstring import flip_bit, set_bit
from ..formats.vectorized import flip_value, flip_values, flip_values_batched
from ..obs.telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from .goldeneye import GoldenEye, LayerState

__all__ = ["ValueInjection", "MetadataInjection", "InjectionEngine",
           "InjectionError", "per_sample_numel"]


def per_sample_numel(shape: tuple[int, ...]) -> int:
    """Number of injectable elements *per sample* of a layer output.

    The leading axis is always the batch dimension — each batch sample is an
    independent inference receiving the same flip (PyTorchFI's batched
    semantics) — so it is excluded from the injectable site count.  A 1-D
    output of shape ``(batch,)`` is a batch of scalars: exactly one site per
    sample, **not** ``batch`` sites (the historical off-by-a-dimension this
    helper fixes).
    """
    if len(shape) <= 1:
        return 1
    return int(np.prod(shape[1:]))


class InjectionError(RuntimeError):
    """Raised for invalid or inapplicable injection plans."""


#: bit operations a plan may carry: XOR flip (transient SEU), force-to-1 /
#: force-to-0 (the stuck-at fault model)
PLAN_OPS = ("xor", "set", "clear")


@dataclass(frozen=True)
class ValueInjection:
    """Corrupt ``bits`` of the data value at ``flat_index`` in a layer's tensor.

    ``op`` selects the corruption primitive (``"xor"`` flip, ``"set"`` /
    ``"clear"`` stuck-at); ``persist`` > 0 marks a temporal fault that
    survives only the first ``persist`` evaluation batches (see
    :class:`repro.core.faultmodels.Temporal`).  The defaults reproduce the
    classic transient single/multi-bit-flip plan exactly.
    """

    layer: str
    location: str  # "neuron" | "weight"
    flat_index: int
    bits: tuple[int, ...]
    op: str = "xor"
    persist: int = 0

    def __post_init__(self):
        if self.location not in ("neuron", "weight"):
            raise InjectionError(f"unknown location {self.location!r}")
        if not self.bits:
            raise InjectionError("at least one bit position is required")
        if self.flat_index < 0:
            raise InjectionError("flat_index must be non-negative")
        if self.op not in PLAN_OPS:
            raise InjectionError(
                f"unknown bit operation {self.op!r}; valid: {', '.join(PLAN_OPS)}")
        if self.persist < 0:
            raise InjectionError("persist must be non-negative")


@dataclass(frozen=True)
class MetadataInjection:
    """Corrupt ``bits`` of metadata register ``register`` of a layer's format."""

    layer: str
    location: str  # "neuron" | "weight"
    register: int
    bits: tuple[int, ...]
    op: str = "xor"
    persist: int = 0

    def __post_init__(self):
        if self.location not in ("neuron", "weight"):
            raise InjectionError(f"unknown location {self.location!r}")
        if not self.bits:
            raise InjectionError("at least one bit position is required")
        if self.op not in PLAN_OPS:
            raise InjectionError(
                f"unknown bit operation {self.op!r}; valid: {', '.join(PLAN_OPS)}")
        if self.persist < 0:
            raise InjectionError("persist must be non-negative")


def _corrupt_bitstring(bits, plan_bits, op: str):
    """Apply a plan's bit operation to a metadata-register bitstring."""
    for b in plan_bits:
        if op == "xor":
            bits = flip_bit(bits, b)
        else:
            bits = set_bit(bits, b, 1 if op == "set" else 0)
    return bits


# scalar encode → flip → decode lives in the formats layer now; keep the
# module-private alias so downstream code and docs keep working
_flip_value = flip_value


@dataclass
class _WeightRestore:
    layer: str
    param_name: str
    saved: np.ndarray
    saved_metadata: object = None


class InjectionEngine:
    """Arms, applies, and reverses injection plans over a GoldenEye instance."""

    def __init__(self, platform: "GoldenEye"):
        self._platform = platform
        self._neuron_plans: list[ValueInjection | MetadataInjection] = []
        self._restores: list[_WeightRestore] = []
        #: number of individual corruptions actually performed
        self.injections_applied: int = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, *plans: ValueInjection | MetadataInjection) -> None:
        """Schedule ``plans``; weight plans are applied immediately."""
        for plan in plans:
            state = self._layer_state(plan.layer)
            if plan.location == "neuron":
                self._validate_neuron_plan(state, plan)
                self._neuron_plans.append(plan)
            elif isinstance(plan, ValueInjection):
                self._inject_weight_value(state, plan)
            else:
                self._inject_weight_metadata(state, plan)

    def disarm(self) -> None:
        """Clear scheduled neuron plans and restore corrupted weights."""
        self._neuron_plans.clear()
        for restore in reversed(self._restores):
            state = self._layer_state(restore.layer)
            np.copyto(getattr(state.module, restore.param_name).data, restore.saved)
            if restore.saved_metadata is not None and state.weight_format is not None:
                state.weight_format.metadata = restore.saved_metadata
        self._restores.clear()

    @contextlib.contextmanager
    def armed(self, *plans: ValueInjection | MetadataInjection):
        """Context manager: arm ``plans``, guarantee disarm afterwards."""
        self.arm(*plans)
        try:
            yield self
        finally:
            self.disarm()

    @property
    def active(self) -> bool:
        return bool(self._neuron_plans or self._restores)

    # ------------------------------------------------------------------
    # neuron-side application (called from the GoldenEye forward hook)
    # ------------------------------------------------------------------
    def apply_neuron_injections(self, state: "LayerState", quantized: np.ndarray) -> np.ndarray:
        if not self._neuron_plans:
            return quantized
        for plan in self._neuron_plans:
            if plan.layer != state.name:
                continue
            if isinstance(plan, MetadataInjection):
                quantized = self._corrupt_neuron_metadata(state, plan, quantized)
            else:
                quantized = self._corrupt_neuron_value(state, plan, quantized)
        return quantized

    def _corrupt_neuron_value(self, state: "LayerState", plan: ValueInjection,
                              quantized: np.ndarray) -> np.ndarray:
        """Flip the planned bit at ``flat_index`` *within each sample*.

        Every sample in the batch is one independent inference experiencing
        the same single-bit flip at the same activation site (PyTorchFI's
        batched-injection semantics), so one batched forward pass evaluates
        the injection across the whole evaluation set at once.  The whole
        batch column is corrupted in a single vectorized encode → flip →
        decode pass (:func:`repro.formats.vectorized.flip_values`).
        """
        out = quantized.copy()
        batch = out.shape[0] if out.ndim >= 1 else 1
        per_sample = out.reshape(batch, -1)
        sample_size = per_sample.shape[1]
        if plan.flat_index >= sample_size:
            raise InjectionError(
                f"flat_index {plan.flat_index} out of range for layer {state.name} "
                f"per-sample output of {sample_size} elements"
            )
        fmt = state.neuron_format
        blocks = None
        if isinstance(fmt, BlockFloatingPoint) and fmt.metadata is not None:
            block_size = fmt.metadata.block_size
            blocks = (np.arange(batch, dtype=np.int64) * sample_size
                      + plan.flat_index) // block_size
        column = per_sample[:, plan.flat_index]
        per_sample[:, plan.flat_index] = flip_values(fmt, column, plan.bits,
                                                     blocks=blocks, op=plan.op)
        self.injections_applied += 1
        self._count_flip("value", "neuron")
        return out

    # ------------------------------------------------------------------
    # fault-axis batched application (one replica lane per armed plan)
    # ------------------------------------------------------------------
    def _lane_plans(self, state: "LayerState") -> list[ValueInjection]:
        return [p for p in self._neuron_plans if p.layer == state.name]

    def apply_lane_injection(self, state: "LayerState", quantized: np.ndarray,
                             lane: int) -> np.ndarray:
        """Apply only lane ``lane``'s armed plan to one replica's tensor.

        Used for metadata-bearing formats, whose registers are live for a
        single replica at a time — the corruption must run against lane
        ``lane``'s freshly captured metadata.
        """
        plans = self._lane_plans(state)
        if not plans:
            return quantized
        return self._corrupt_neuron_value(state, plans[lane], quantized)

    def apply_lane_injections(self, state: "LayerState",
                              quantized: np.ndarray,
                              lanes: int) -> np.ndarray:
        """Apply all K armed plans to a fault-stacked tensor in one pass.

        ``quantized`` holds ``lanes`` replicas of the evaluation batch along
        axis 0; armed plan ``k`` corrupts only replica ``k``, at its own
        site with its own bits — a single
        :func:`~repro.formats.vectorized.flip_values_batched` call over the
        gathered victim column.  Stateless formats only (no block/scale
        registers to track per lane).
        """
        plans = self._lane_plans(state)
        if not plans:
            return quantized
        out = quantized.copy()
        total = out.shape[0] if out.ndim >= 1 else 1
        batch = total // lanes
        per_sample = out.reshape(total, -1)
        sample_size = per_sample.shape[1]
        for plan in plans:
            if plan.flat_index >= sample_size:
                raise InjectionError(
                    f"flat_index {plan.flat_index} out of range for layer "
                    f"{state.name} per-sample output of {sample_size} elements"
                )
        ops = {p.op for p in plans}
        if len(ops) > 1:
            raise InjectionError(
                f"lane-batched plans must share one bit operation, got {ops}")
        rows = np.arange(total)
        cols = np.repeat(
            np.array([p.flat_index for p in plans], dtype=np.int64), batch)
        column = per_sample[rows, cols]
        per_sample[rows, cols] = flip_values_batched(
            state.neuron_format, column, [p.bits for p in plans],
            op=plans[0].op)
        for _ in plans:
            self.injections_applied += 1
            self._count_flip("value", "neuron")
        return out

    def _corrupt_neuron_metadata(self, state: "LayerState", plan: MetadataInjection,
                                 quantized: np.ndarray) -> np.ndarray:
        fmt = state.neuron_format
        if fmt is None or not fmt.has_metadata:
            raise InjectionError(
                f"layer {state.name} format {fmt!r} has no metadata to inject into"
            )
        golden = state.neuron_golden_metadata
        bits = _corrupt_bitstring(fmt.get_metadata_bits(plan.register),
                                  plan.bits, plan.op)
        fmt.set_metadata_bits(bits, plan.register)
        corrupted = fmt.apply_metadata_corruption(quantized, golden)
        self.injections_applied += 1
        self._count_flip("metadata", "neuron")
        return corrupted

    # ------------------------------------------------------------------
    # weight-side application (offline, at arm time)
    # ------------------------------------------------------------------
    def _weight_param(self, state: "LayerState"):
        param = state.module._parameters.get("weight")
        if param is None:
            raise InjectionError(f"layer {state.name} has no weight parameter")
        return param

    def _inject_weight_value(self, state: "LayerState", plan: ValueInjection) -> None:
        param = self._weight_param(state)
        flat = param.data.reshape(-1)
        if plan.flat_index >= flat.size:
            raise InjectionError(
                f"flat_index {plan.flat_index} out of range for layer {state.name} "
                f"weight of {flat.size} elements"
            )
        fmt = state.weight_format
        block = 0
        if isinstance(fmt, BlockFloatingPoint) and fmt.metadata is not None:
            block = plan.flat_index // fmt.metadata.block_size
        self._restores.append(
            _WeightRestore(state.name, "weight", param.data.copy())
        )
        corrupted = _flip_value(fmt, float(flat[plan.flat_index]), plan.bits,
                                block=block, op=plan.op)
        flat[plan.flat_index] = np.float32(corrupted)
        self.injections_applied += 1
        self._count_flip("value", "weight")

    def _inject_weight_metadata(self, state: "LayerState", plan: MetadataInjection) -> None:
        fmt = state.weight_format
        if fmt is None or not fmt.has_metadata:
            raise InjectionError(
                f"layer {state.name} weight format {fmt!r} has no metadata"
            )
        param = self._weight_param(state)
        golden = state.weight_golden_metadata
        self._restores.append(
            _WeightRestore(state.name, "weight", param.data.copy(),
                           saved_metadata=golden)
        )
        bits = _corrupt_bitstring(fmt.get_metadata_bits(plan.register),
                                  plan.bits, plan.op)
        fmt.set_metadata_bits(bits, plan.register)
        param.data[...] = fmt.apply_metadata_corruption(param.data, golden)
        self.injections_applied += 1
        self._count_flip("metadata", "weight")

    # ------------------------------------------------------------------
    # random-site sampling
    # ------------------------------------------------------------------
    def sample_value_injection(
        self,
        rng: np.random.Generator,
        layer: str | None = None,
        location: str = "neuron",
        num_bits: int = 1,
        fault_model=None,
    ) -> ValueInjection:
        """Sample a uniformly random single/multi-bit value injection.

        Neuron sampling requires a prior (warm-up) forward pass so output
        shapes are known.  ``fault_model`` (a
        :class:`repro.core.faultmodels.FaultModel`) selects the bit pattern
        and operation; ``None`` keeps the classic single/multi-bit XOR draw
        byte-for-byte (same RNG consumption, same plans).
        """
        state = self._pick_layer(rng, layer)
        if location == "neuron":
            if state.last_output_shape is None:
                raise InjectionError(
                    f"layer {state.name} has no recorded output shape; "
                    "run one clean forward pass first"
                )
            # index within one sample (batch axis excluded): each batch sample
            # is an independent inference receiving the same flip
            numel = per_sample_numel(state.last_output_shape)
            width = state.neuron_format.bit_width if state.neuron_format else 32
        else:
            param = self._weight_param(state)
            numel = param.data.size
            width = state.weight_format.bit_width if state.weight_format else 32
        index = int(rng.integers(numel))
        if fault_model is None:
            bits = tuple(sorted(
                rng.choice(width, size=num_bits, replace=False).tolist()))
            return ValueInjection(state.name, location, index, bits)
        try:
            bits = fault_model.sample_bits(rng, width, num_bits)
        except ValueError as exc:
            raise InjectionError(str(exc)) from None
        return ValueInjection(state.name, location, index, bits,
                              op=fault_model.op, persist=fault_model.persist)

    def sample_metadata_injection(
        self,
        rng: np.random.Generator,
        layer: str | None = None,
        location: str = "neuron",
        num_bits: int = 1,
    ) -> MetadataInjection:
        """Sample a uniformly random metadata-register injection."""
        state = self._pick_layer(rng, layer)
        fmt = state.neuron_format if location == "neuron" else state.weight_format
        if fmt is None or not fmt.has_metadata:
            raise InjectionError(f"layer {state.name} format {fmt!r} has no metadata")
        registers = fmt.num_metadata_registers()
        if registers == 0:
            raise InjectionError(
                f"layer {state.name} has no captured metadata; "
                "run one clean forward pass (or attach weights) first"
            )
        width = fmt.metadata_register_width()
        register = int(rng.integers(registers))
        bits = tuple(sorted(rng.choice(width, size=num_bits, replace=False).tolist()))
        return MetadataInjection(state.name, location, register, bits)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _count_flip(kind: str, location: str) -> None:
        """Telemetry: count one performed corruption in the registry."""
        get_registry().counter(
            "injection.flips_total",
            help="bit-flip corruptions performed, by plan kind and location",
            kind=kind, location=location).inc()

    def _layer_state(self, name: str) -> "LayerState":
        try:
            return self._platform.layers[name]
        except KeyError:
            raise InjectionError(
                f"layer {name!r} is not instrumented; "
                f"known layers: {', '.join(self._platform.layers)}"
            ) from None

    def _pick_layer(self, rng: np.random.Generator, layer: str | None) -> "LayerState":
        if layer is not None:
            return self._layer_state(layer)
        names = list(self._platform.layers)
        return self._platform.layers[names[int(rng.integers(len(names)))]]

    def _validate_neuron_plan(self, state: "LayerState",
                              plan: ValueInjection | MetadataInjection) -> None:
        fmt = state.neuron_format
        if isinstance(plan, MetadataInjection):
            if fmt is None or not fmt.has_metadata:
                raise InjectionError(
                    f"layer {state.name} format {fmt!r} has no metadata to inject into"
                )
            return
        width = fmt.bit_width if fmt is not None else 32
        for b in plan.bits:
            if not 0 <= b < width:
                raise InjectionError(
                    f"bit {b} out of range for {width}-bit format at layer {state.name}"
                )
