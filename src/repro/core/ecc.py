"""ECC-aware protection models applied at injection time.

A :class:`ProtectionModel` decides, for each planned fault, what a given
error-correcting code would do with it — *before* the fault reaches the
datapath.  The verdict is a pure function of the plan (kind, location and
flipped-bit count), so it is deterministic across serial, parallel,
fault-batched and journal-resumed execution:

* ``"corrected"`` — the code repairs the fault; the injected inference is
  skipped entirely and the record carries the golden outcome (ΔLoss 0,
  SDC 0).
* ``"detected"`` — the code flags the fault (a detected-unrecoverable
  error); the system knows the output is suspect, so the corruption is
  *not silent* — the record again carries the golden outcome, flagged
  ``ecc="detected"``.
* ``"silent"`` — the fault slips past the code (aliases to a valid
  codeword); the injection executes normally and whatever SDC it causes
  is a genuine silent error.
* ``None`` — the site is simply not covered by this protection model.

Models:

* :class:`Secded` (``"secded"``) — single-error-correct / double-error-
  detect over each encoded *value* word: 1 flipped bit → corrected,
  2 → detected, ≥3 → silent (a triple error aliases or miscorrects).
* :class:`BfpExpParity` (``"parity"``) — one parity bit over each shared
  metadata register (BFP shared exponents, INT scale, AFP bias): an odd
  number of flipped register bits → detected, an even number → silent.
* ``"secded+parity"`` — both, each covering its own site class.

Each verdict increments ``ecc.corrected_total`` / ``ecc.detected_total`` /
``ecc.silent_total`` in the telemetry registry (worker deltas stream back
to the parent like every other counter).

The cost side — how many extra storage bits a protection spends — lives
here too (:func:`secded_check_bits`, :func:`protection_cost_bits`) and is
what the selective-hardening policy engine (:mod:`repro.core.hardening`)
ranks layers by.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProtectionModel",
    "NoProtection",
    "Secded",
    "BfpExpParity",
    "CombinedProtection",
    "VALID_PROTECTIONS",
    "parse_protection",
    "secded_check_bits",
    "protection_cost_bits",
]

#: specs the ``--protect`` flag (and :func:`parse_protection`) accepts
VALID_PROTECTIONS = ("none", "secded", "parity", "secded+parity")


@dataclass(frozen=True)
class ProtectionModel:
    """Base protection: classify a planned fault against a code's guarantee."""

    def spec(self) -> str:
        raise NotImplementedError

    def classify(self, plan) -> str | None:
        """Verdict for ``plan``: corrected / detected / silent / None."""
        from .injection import ValueInjection
        kind = "value" if isinstance(plan, ValueInjection) else "metadata"
        return self.classify_bits(kind, len(plan.bits))

    def classify_bits(self, kind: str, num_bits: int) -> str | None:
        """Verdict from the fault geometry alone (pure, deterministic)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoProtection(ProtectionModel):
    def spec(self) -> str:
        return "none"

    def classify_bits(self, kind, num_bits):
        return None


@dataclass(frozen=True)
class Secded(ProtectionModel):
    """SECDED over value words: 1 corrected, 2 detected, >= 3 silent."""

    def spec(self) -> str:
        return "secded"

    def classify_bits(self, kind, num_bits):
        if kind != "value":
            return None
        if num_bits == 1:
            return "corrected"
        if num_bits == 2:
            return "detected"
        return "silent"


@dataclass(frozen=True)
class BfpExpParity(ProtectionModel):
    """One parity bit per shared metadata register: odd detected, even silent."""

    def spec(self) -> str:
        return "parity"

    def classify_bits(self, kind, num_bits):
        if kind != "metadata":
            return None
        return "detected" if num_bits % 2 == 1 else "silent"


@dataclass(frozen=True)
class CombinedProtection(ProtectionModel):
    """Apply several protections, each covering its own site class."""

    parts: tuple = ()

    def spec(self) -> str:
        return "+".join(p.spec() for p in self.parts)

    def classify_bits(self, kind, num_bits):
        for part in self.parts:
            verdict = part.classify_bits(kind, num_bits)
            if verdict is not None:
                return verdict
        return None


def parse_protection(spec: "str | ProtectionModel | None") -> ProtectionModel:
    """Parse a protection spec (``ValueError`` names the valid values)."""
    if spec is None:
        return NoProtection()
    if isinstance(spec, ProtectionModel):
        return spec
    text = str(spec).strip().lower()
    parts = []
    for token in text.split("+"):
        if token == "none":
            continue
        elif token == "secded":
            parts.append(Secded())
        elif token == "parity":
            parts.append(BfpExpParity())
        else:
            raise ValueError(
                f"unknown protection model {spec!r}; "
                f"valid models: {', '.join(VALID_PROTECTIONS)}")
    if not parts:
        return NoProtection()
    if len(parts) == 1:
        return parts[0]
    return CombinedProtection(parts=tuple(parts))


def secded_check_bits(width: int) -> int:
    """Hamming check bits for a ``width``-bit data word (excl. the DED parity).

    The smallest ``r`` with ``2**r >= width + r + 1`` — e.g. 5 for a 16-bit
    word, 6 for 32 bits.
    """
    if width < 1:
        raise ValueError(f"word width must be >= 1, got {width}")
    r = 1
    while (1 << r) < width + r + 1:
        r += 1
    return r


def protection_cost_bits(words: int, width: int, protection="secded") -> int:
    """Total extra storage bits to protect ``words`` words of ``width`` bits.

    SECDED spends the Hamming check bits plus one overall parity bit per
    word; plain parity spends one bit per word; ``none`` is free.
    """
    model = parse_protection(protection)
    spec = model.spec()
    per_word = 0
    if "secded" in spec:
        per_word += secded_check_bits(width) + 1
    if "parity" in spec:
        per_word += 1
    return int(words) * per_word
