"""Injection-campaign runner: N unique single-bit flips per layer (§IV-C).

A campaign fixes a model + number format, runs one error-free (golden)
inference per evaluation batch, then performs ``injections_per_layer`` unique
bit flips at each instrumented layer — in data values or metadata — measuring
ΔLoss and mismatches for each against the golden outcome.  This reproduces
the experimental procedure behind Fig. 7 ("1000 unique single-bit flip
injections for each of data and metadata at a layer-granularity").

By default the campaign runs in **checkpoint-and-resume** mode
(``resume=True``): the golden pass records every layer's output in an
:class:`~repro.core.resume.ActivationCache`, and each injection at layer *L*
restarts inference *from L* with the cached prefix replayed — O(suffix)
instead of O(network) per injection, bit-identical logits (the Gräfe et al.
2023 intermediate-state-checkpointing optimisation).  Set ``resume=False``
to force full re-execution for every injection.

Determinism
-----------
Site sampling is **per-layer deterministic**: each layer draws from a child
generator ``np.random.default_rng([seed, layer_index])`` (``layer_index`` =
the layer's position in the platform's full instrumented-layer order), so
restricting ``layers=`` to a subset, reordering the subset, or a layer
exhausting its site space early never shifts the sites sampled at any
*other* layer.  ``seed`` alone reproduces an entire campaign.

Telemetry
---------
The runner is fully instrumented (see :mod:`repro.obs`): a ``campaign.run``
span wraps the campaign, a ``campaign.layer`` span wraps each layer, and —
when tracing is enabled — one ``campaign.injection`` event is emitted per
injection (layer, site, bits, ΔLoss, wall-time), making every campaign a
replayable JSONL event stream.  Counters/histograms land in the process
registry (``campaign.injections_total``, ``campaign.injection_seconds``,
``campaign.sampling_retries_total``, ``campaign.injection_errors_total``)
and the resume cache's counters are bridged to ``resume.*`` gauges.
:attr:`CampaignResult.telemetry` carries the run-level summary
(wall-time, injections/sec, per-layer timing).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from ..obs.telemetry import get_registry
from ..obs.tracing import get_tracer
from .goldeneye import GoldenEye
from .injection import InjectionError, MetadataInjection, ValueInjection, \
    per_sample_numel
from .metrics import InferenceOutcome, compare_outcomes
from .resume import DEFAULT_CACHE_BUDGET

__all__ = ["CampaignResult", "LayerCampaignResult", "run_campaign", "golden_inference"]

logger = logging.getLogger("repro.campaign")


@dataclass
class LayerCampaignResult:
    """Aggregated resilience statistics for one layer."""

    layer: str
    injections: int
    mean_delta_loss: float
    max_delta_loss: float
    mismatch_rate: float
    sdc_rate: float
    delta_losses: list[float] = field(default_factory=list, repr=False)
    #: wall-clock spent on this layer's injected inferences (seconds)
    seconds: float = 0.0
    #: sampling attempts that drew an already-seen or invalid site
    retries: int = 0


@dataclass
class CampaignResult:
    """Outcome of a whole injection campaign."""

    kind: str  # "value" | "metadata"
    location: str  # "neuron" | "weight"
    format_name: str
    golden_accuracy: float
    per_layer: dict[str, LayerCampaignResult]
    #: activation-cache counters when the campaign ran in resume mode
    resume_stats: dict | None = None
    #: run-level telemetry summary (wall-time, throughput, per-layer timing)
    telemetry: dict | None = None

    def mean_delta_loss(self) -> float:
        """Network-level resilience: ΔLoss averaged across layers (§V-A)."""
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mean_delta_loss for r in self.per_layer.values()]))

    def mean_mismatch_rate(self) -> float:
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mismatch_rate for r in self.per_layer.values()]))


def golden_inference(platform: GoldenEye, images: np.ndarray,
                     labels: np.ndarray) -> InferenceOutcome:
    """Run one clean (injection-free) inference under the platform's format."""
    platform.model.eval()
    with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"):
        # injected faults legitimately push activations to inf/NaN; the
        # metrics layer accounts for non-finite logits explicitly
        logits = platform.model(Tensor(np.asarray(images, dtype=np.float32)))
    return InferenceOutcome(logits=logits.data.copy(), labels=np.asarray(labels))


def run_campaign(
    platform: GoldenEye,
    images: np.ndarray,
    labels: np.ndarray,
    kind: str = "value",
    location: str = "neuron",
    injections_per_layer: int = 100,
    seed: int = 0,
    layers: list[str] | None = None,
    num_bits: int = 1,
    resume: bool = True,
    resume_budget_bytes: int | None = DEFAULT_CACHE_BUDGET,
) -> CampaignResult:
    """Run an injection campaign and aggregate ΔLoss / mismatch per layer.

    The platform must already be attached.  Each injection is unique within
    its layer (no repeated (index, bits) pair), mirroring the paper's "1000
    unique single-bit flip injections"; ``num_bits > 1`` switches to the
    multi-bit flip error model (several bits of the same word at once).

    Each layer samples from its own child generator derived from
    ``[seed, layer_index]`` (see the module docstring), so per-layer results
    are invariant under layer subsetting and reordering.

    ``resume=True`` (the default) checkpoints the golden pass and restarts
    each injected inference from its victim layer (see module docstring);
    ``resume_budget_bytes`` caps the activation cache (None = unlimited).
    Results are bit-identical either way.
    """
    if not platform.attached:
        raise RuntimeError("attach() the GoldenEye platform before running a campaign")
    if kind not in ("value", "metadata"):
        raise ValueError(f"kind must be 'value' or 'metadata', got {kind!r}")
    tracer = get_tracer()
    registry = get_registry()
    t_campaign = time.perf_counter()
    if resume:
        platform.enable_resume(resume_budget_bytes)
        logits = platform.capture_golden(images)  # also warms output shapes
        golden = InferenceOutcome(logits=logits, labels=np.asarray(labels))
    else:
        golden = golden_inference(platform, images, labels)

    all_layers = platform.layer_names()
    layer_index = {name: i for i, name in enumerate(all_layers)}
    target_layers = layers if layers is not None else all_layers
    logger.info("campaign start: kind=%s location=%s format=%s layers=%d "
                "injections/layer=%d resume=%s", kind, location,
                platform.format_name(), len(target_layers),
                injections_per_layer, resume)
    per_layer: dict[str, LayerCampaignResult] = {}
    with tracer.span("campaign.run", kind=kind, location=location,
                     format=platform.format_name(), seed=seed,
                     injections_per_layer=injections_per_layer,
                     layers=len(target_layers), resume=resume) as run_span:
        for layer in target_layers:
            # per-layer child RNG: sites at this layer depend only on
            # (seed, the layer's position in the full instrumented order)
            rng = np.random.default_rng(
                [seed, layer_index.get(layer, len(layer_index))])
            with tracer.span("campaign.layer", layer=layer, kind=kind) as layer_span:
                stats = _run_layer(platform, layer, golden, images, kind, location,
                                   injections_per_layer, rng, num_bits,
                                   use_resume=resume)
                if stats is not None:
                    layer_span.set(performed=stats.injections,
                                   retries=stats.retries,
                                   mean_delta_loss=stats.mean_delta_loss)
            if stats is not None:
                per_layer[layer] = stats
                logger.debug("layer %s: %d injections in %.3fs "
                             "(mean ΔLoss %.4f)", layer, stats.injections,
                             stats.seconds, stats.mean_delta_loss)
            if resume and platform.resume_session is not None:
                # keep the resume gauges live as the campaign progresses
                platform.resume_session.publish_metrics(registry)
        resume_stats = None
        if resume and platform.resume_session is not None:
            resume_stats = platform.resume_session.stats.as_dict()
            platform.resume_session.publish_metrics(registry)
            platform.clear_resume()  # release the cached activations
        wall = time.perf_counter() - t_campaign
        injections_total = sum(r.injections for r in per_layer.values())
        retries_total = sum(r.retries for r in per_layer.values())
        throughput = injections_total / wall if wall > 0 else 0.0
        run_span.set(injections=injections_total, wall_s=wall,
                     injections_per_sec=throughput)
    registry.gauge("campaign.injections_per_sec",
                   help="throughput of the most recent campaign").set(throughput)
    registry.gauge("campaign.wall_seconds").set(wall)
    logger.info("campaign done: %d injections in %.2fs (%.1f inj/s)",
                injections_total, wall, throughput)
    telemetry = {
        "wall_seconds": wall,
        "injections": injections_total,
        "injections_per_sec": throughput,
        "sampling_retries": retries_total,
        "per_layer": {
            name: {"seconds": r.seconds, "injections": r.injections,
                   "retries": r.retries}
            for name, r in per_layer.items()
        },
    }
    return CampaignResult(
        kind=kind,
        location=location,
        format_name=platform.format_name(),
        golden_accuracy=golden.accuracy,
        per_layer=per_layer,
        resume_stats=resume_stats,
        telemetry=telemetry,
    )


def _run_layer(
    platform: GoldenEye,
    layer: str,
    golden: InferenceOutcome,
    images: np.ndarray,
    kind: str,
    location: str,
    budget: int,
    rng: np.random.Generator,
    num_bits: int = 1,
    use_resume: bool = False,
) -> LayerCampaignResult | None:
    engine = platform.injector
    tracer = get_tracer()
    registry = get_registry()
    seen: set[tuple] = set()
    delta_losses: list[float] = []
    mismatches = 0.0
    sdcs = 0.0
    performed = 0
    attempts = 0
    max_attempts = budget * 20
    t_layer = time.perf_counter()
    # the unique-site count is invariant across attempts: compute it once,
    # not inside the sampling loop
    site_space = _site_space(platform, layer, kind, location)
    while performed < budget and attempts < max_attempts:
        attempts += 1
        try:
            if kind == "value":
                plan = engine.sample_value_injection(rng, layer=layer,
                                                     location=location,
                                                     num_bits=num_bits)
                key = (plan.flat_index, plan.bits)
            else:
                plan = engine.sample_metadata_injection(rng, layer=layer,
                                                        location=location,
                                                        num_bits=num_bits)
                key = (plan.register, plan.bits)
        except InjectionError:
            registry.counter(
                "campaign.injection_errors_total",
                help="layers skipped because sampling raised InjectionError",
                kind=kind, location=location).inc()
            return None  # site inapplicable (e.g. metadata on a plain FP layer)
        if key in seen:
            if len(seen) >= site_space:
                break  # exhausted every unique site at this layer
            continue
        seen.add(key)
        t_inj = time.perf_counter()
        with engine.armed(plan):
            if use_resume:
                faulty = InferenceOutcome(
                    logits=platform.forward_from(layer, images),
                    labels=golden.labels,
                )
            else:
                faulty = golden_inference(platform, images, golden.labels)
        metrics = compare_outcomes(golden, faulty)
        dur = time.perf_counter() - t_inj
        delta_losses.append(metrics["delta_loss"])
        mismatches += metrics["mismatch_rate"]
        sdcs += metrics["sdc_rate"]
        performed += 1
        registry.counter("campaign.injections_total",
                         help="injected inferences executed",
                         kind=kind, location=location).inc()
        registry.histogram("campaign.injection_seconds",
                           help="wall-clock per injected inference",
                           layer=layer).observe(dur)
        if tracer.enabled:
            site = plan.flat_index if kind == "value" else plan.register
            tracer.event("campaign.injection", layer=layer, kind=kind,
                         location=location, site=int(site),
                         bits=list(plan.bits),
                         delta_loss=metrics["delta_loss"],
                         mismatch_rate=metrics["mismatch_rate"],
                         sdc_rate=metrics["sdc_rate"], dur_s=dur)
    retries = attempts - performed
    if retries:
        registry.counter("campaign.sampling_retries_total",
                         help="sampling attempts that hit a seen/invalid site",
                         kind=kind, location=location).inc(retries)
    if performed == 0:
        return None
    return LayerCampaignResult(
        layer=layer,
        injections=performed,
        mean_delta_loss=float(np.mean(delta_losses)),
        max_delta_loss=float(np.max(delta_losses)),
        mismatch_rate=mismatches / performed,
        sdc_rate=sdcs / performed,
        delta_losses=delta_losses,
        seconds=time.perf_counter() - t_layer,
        retries=retries,
    )


def _site_space(platform: GoldenEye, layer: str, kind: str, location: str) -> int:
    """Total number of unique (index/register, bit) sites at this layer.

    Neuron value sites count *per-sample* elements: the batch axis is never
    injectable (each batch sample receives the same flip), so a 1-D layer
    output of shape ``(batch,)`` contributes exactly one element — not
    ``batch`` of them (see :func:`repro.core.injection.per_sample_numel`).
    """
    state = platform.layers[layer]
    if kind == "value":
        if location == "neuron":
            shape = state.last_output_shape
            numel = per_sample_numel(shape) if shape is not None else 0
            width = state.neuron_format.bit_width if state.neuron_format else 32
        else:
            param = state.module._parameters.get("weight")
            numel = param.data.size if param is not None else 0
            width = state.weight_format.bit_width if state.weight_format else 32
        return numel * width
    fmt = state.neuron_format if location == "neuron" else state.weight_format
    if fmt is None or not fmt.has_metadata:
        return 0
    return fmt.num_metadata_registers() * fmt.metadata_register_width()
