"""Injection-campaign runner: N unique single-bit flips per layer (§IV-C).

A campaign fixes a model + number format, runs one error-free (golden)
inference per evaluation batch, then performs ``injections_per_layer`` unique
bit flips at each instrumented layer — in data values or metadata — measuring
ΔLoss and mismatches for each against the golden outcome.  This reproduces
the experimental procedure behind Fig. 7 ("1000 unique single-bit flip
injections for each of data and metadata at a layer-granularity").

By default the campaign runs in **checkpoint-and-resume** mode
(``resume=True``): the golden pass records every layer's output in an
:class:`~repro.core.resume.ActivationCache`, and each injection at layer *L*
restarts inference *from L* with the cached prefix replayed — O(suffix)
instead of O(network) per injection, bit-identical logits (the Gräfe et al.
2023 intermediate-state-checkpointing optimisation).  Set ``resume=False``
to force full re-execution for every injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .goldeneye import GoldenEye
from .injection import InjectionError, MetadataInjection, ValueInjection
from .metrics import InferenceOutcome, compare_outcomes
from .resume import DEFAULT_CACHE_BUDGET

__all__ = ["CampaignResult", "LayerCampaignResult", "run_campaign", "golden_inference"]


@dataclass
class LayerCampaignResult:
    """Aggregated resilience statistics for one layer."""

    layer: str
    injections: int
    mean_delta_loss: float
    max_delta_loss: float
    mismatch_rate: float
    sdc_rate: float
    delta_losses: list[float] = field(default_factory=list, repr=False)


@dataclass
class CampaignResult:
    """Outcome of a whole injection campaign."""

    kind: str  # "value" | "metadata"
    location: str  # "neuron" | "weight"
    format_name: str
    golden_accuracy: float
    per_layer: dict[str, LayerCampaignResult]
    #: activation-cache counters when the campaign ran in resume mode
    resume_stats: dict | None = None

    def mean_delta_loss(self) -> float:
        """Network-level resilience: ΔLoss averaged across layers (§V-A)."""
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mean_delta_loss for r in self.per_layer.values()]))

    def mean_mismatch_rate(self) -> float:
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mismatch_rate for r in self.per_layer.values()]))


def golden_inference(platform: GoldenEye, images: np.ndarray,
                     labels: np.ndarray) -> InferenceOutcome:
    """Run one clean (injection-free) inference under the platform's format."""
    platform.model.eval()
    with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"):
        # injected faults legitimately push activations to inf/NaN; the
        # metrics layer accounts for non-finite logits explicitly
        logits = platform.model(Tensor(np.asarray(images, dtype=np.float32)))
    return InferenceOutcome(logits=logits.data.copy(), labels=np.asarray(labels))


def run_campaign(
    platform: GoldenEye,
    images: np.ndarray,
    labels: np.ndarray,
    kind: str = "value",
    location: str = "neuron",
    injections_per_layer: int = 100,
    seed: int = 0,
    layers: list[str] | None = None,
    num_bits: int = 1,
    resume: bool = True,
    resume_budget_bytes: int | None = DEFAULT_CACHE_BUDGET,
) -> CampaignResult:
    """Run an injection campaign and aggregate ΔLoss / mismatch per layer.

    The platform must already be attached.  Each injection is unique within
    its layer (no repeated (index, bits) pair), mirroring the paper's "1000
    unique single-bit flip injections"; ``num_bits > 1`` switches to the
    multi-bit flip error model (several bits of the same word at once).

    ``resume=True`` (the default) checkpoints the golden pass and restarts
    each injected inference from its victim layer (see module docstring);
    ``resume_budget_bytes`` caps the activation cache (None = unlimited).
    Results are bit-identical either way.
    """
    if not platform.attached:
        raise RuntimeError("attach() the GoldenEye platform before running a campaign")
    if kind not in ("value", "metadata"):
        raise ValueError(f"kind must be 'value' or 'metadata', got {kind!r}")
    rng = np.random.default_rng(seed)
    if resume:
        platform.enable_resume(resume_budget_bytes)
        logits = platform.capture_golden(images)  # also warms output shapes
        golden = InferenceOutcome(logits=logits, labels=np.asarray(labels))
    else:
        golden = golden_inference(platform, images, labels)

    target_layers = layers if layers is not None else platform.layer_names()
    per_layer: dict[str, LayerCampaignResult] = {}
    for layer in target_layers:
        stats = _run_layer(platform, layer, golden, images, kind, location,
                           injections_per_layer, rng, num_bits, use_resume=resume)
        if stats is not None:
            per_layer[layer] = stats
    resume_stats = None
    if resume and platform.resume_session is not None:
        resume_stats = platform.resume_session.stats.as_dict()
        platform.clear_resume()  # release the cached activations
    return CampaignResult(
        kind=kind,
        location=location,
        format_name=platform.format_name(),
        golden_accuracy=golden.accuracy,
        per_layer=per_layer,
        resume_stats=resume_stats,
    )


def _run_layer(
    platform: GoldenEye,
    layer: str,
    golden: InferenceOutcome,
    images: np.ndarray,
    kind: str,
    location: str,
    budget: int,
    rng: np.random.Generator,
    num_bits: int = 1,
    use_resume: bool = False,
) -> LayerCampaignResult | None:
    engine = platform.injector
    seen: set[tuple] = set()
    delta_losses: list[float] = []
    mismatches = 0.0
    sdcs = 0.0
    performed = 0
    attempts = 0
    max_attempts = budget * 20
    # the unique-site count is invariant across attempts: compute it once,
    # not inside the sampling loop
    site_space = _site_space(platform, layer, kind, location)
    while performed < budget and attempts < max_attempts:
        attempts += 1
        try:
            if kind == "value":
                plan = engine.sample_value_injection(rng, layer=layer,
                                                     location=location,
                                                     num_bits=num_bits)
                key = (plan.flat_index, plan.bits)
            else:
                plan = engine.sample_metadata_injection(rng, layer=layer,
                                                        location=location,
                                                        num_bits=num_bits)
                key = (plan.register, plan.bits)
        except InjectionError:
            return None  # site inapplicable (e.g. metadata on a plain FP layer)
        if key in seen:
            if len(seen) >= site_space:
                break  # exhausted every unique site at this layer
            continue
        seen.add(key)
        with engine.armed(plan):
            if use_resume:
                faulty = InferenceOutcome(
                    logits=platform.forward_from(layer, images),
                    labels=golden.labels,
                )
            else:
                faulty = golden_inference(platform, images, golden.labels)
        metrics = compare_outcomes(golden, faulty)
        delta_losses.append(metrics["delta_loss"])
        mismatches += metrics["mismatch_rate"]
        sdcs += metrics["sdc_rate"]
        performed += 1
    if performed == 0:
        return None
    return LayerCampaignResult(
        layer=layer,
        injections=performed,
        mean_delta_loss=float(np.mean(delta_losses)),
        max_delta_loss=float(np.max(delta_losses)),
        mismatch_rate=mismatches / performed,
        sdc_rate=sdcs / performed,
        delta_losses=delta_losses,
    )


def _site_space(platform: GoldenEye, layer: str, kind: str, location: str) -> int:
    """Total number of unique (index/register, bit) sites at this layer."""
    state = platform.layers[layer]
    if kind == "value":
        if location == "neuron":
            shape = state.last_output_shape or (0,)
            numel = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
            width = state.neuron_format.bit_width if state.neuron_format else 32
        else:
            param = state.module._parameters.get("weight")
            numel = param.data.size if param is not None else 0
            width = state.weight_format.bit_width if state.weight_format else 32
        return numel * width
    fmt = state.neuron_format if location == "neuron" else state.weight_format
    if fmt is None or not fmt.has_metadata:
        return 0
    return fmt.num_metadata_registers() * fmt.metadata_register_width()
