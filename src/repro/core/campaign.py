"""Injection-campaign runner: N unique single-bit flips per layer (§IV-C).

A campaign fixes a model + number format, runs one error-free (golden)
inference per evaluation batch, then performs ``injections_per_layer`` unique
bit flips at each instrumented layer — in data values or metadata — measuring
ΔLoss and mismatches for each against the golden outcome.  This reproduces
the experimental procedure behind Fig. 7 ("1000 unique single-bit flip
injections for each of data and metadata at a layer-granularity").

By default the campaign runs in **checkpoint-and-resume** mode
(``resume=True``): the golden pass records every layer's output in an
:class:`~repro.core.resume.ActivationCache`, and each injection at layer *L*
restarts inference *from L* with the cached prefix replayed — O(suffix)
instead of O(network) per injection, bit-identical logits (the Gräfe et al.
2023 intermediate-state-checkpointing optimisation).  Set ``resume=False``
to force full re-execution for every injection.

Pipeline
--------
The runner is a three-stage pipeline with a strict separation that makes
parallel execution, write-ahead journaling and crash recovery possible:

1. **Sampling** (:func:`sample_layer_plans`) — deterministically draws each
   layer's unique injection plans up front, consuming only the layer's child
   RNG.  Sampling never touches the model.
2. **Execution** (:func:`execute_injection`) — runs one injected inference
   for one plan and returns a plain-dict *record* (site, bits, ΔLoss,
   mismatch/SDC rates, duration).  Records are JSON- and pickle-friendly so
   they can cross process boundaries and be journaled.
3. **Aggregation** (:func:`aggregate_layer`) — folds the records of a layer
   *in plan order* (``seq``) into a :class:`LayerCampaignResult`.  Because
   the fold order is fixed by ``seq`` — not by execution order — serial,
   parallel and journal-resumed campaigns produce bit-identical statistics.

Parallel execution & crash safety
---------------------------------
``run_campaign(..., workers=N)`` shards the sampled plans into per-layer
chunks and executes them on a supervised ``multiprocessing`` pool (see
:mod:`repro.exec`): per-shard timeout + bounded retry with exponential
backoff, quarantine of poison shards, dead-worker detection with shard
reassignment, and SIGINT/SIGTERM-safe shutdown returning a partial,
resumable result.  ``journal=PATH`` write-ahead-journals every completed
record (flushed before aggregation) so a crashed or killed campaign resumes
by skipping journaled work — reproducing the identical aggregate.

Determinism
-----------
Site sampling is **per-layer deterministic**: each layer draws from a child
generator ``np.random.default_rng([seed, layer_index])`` (``layer_index`` =
the layer's position in the platform's full instrumented-layer order), so
restricting ``layers=`` to a subset, reordering the subset, or a layer
exhausting its site space early never shifts the sites sampled at any
*other* layer.  ``seed`` alone reproduces an entire campaign — serial or
parallel, interrupted or not.

Telemetry
---------
The runner is fully instrumented (see :mod:`repro.obs`): a ``campaign.run``
span wraps the campaign, a ``campaign.layer`` span wraps each serially
executed layer, and — when tracing is enabled — one ``campaign.injection``
event is emitted per injection (layer, site, bits, ΔLoss, wall-time),
making every campaign a replayable JSONL event stream.  Counters/histograms
land in the process registry (``campaign.injections_total``,
``campaign.injection_seconds``, ``campaign.sampling_retries_total``,
``campaign.injection_errors_total``, ``campaign.journal_skipped_total``;
parallel runs add the ``exec.*`` family) and the resume cache's counters
are bridged to ``resume.*`` gauges.  :attr:`CampaignResult.telemetry`
carries the run-level summary (wall-time, injections/sec, per-layer
timing).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from ..obs.telemetry import get_registry
from ..obs.tracing import BroadcastTracer, get_tracer, set_tracer
from .ecc import parse_protection
from .faultmodels import EXHAUSTIVE_SITE_CAP, parse_fault_model
from .goldeneye import GoldenEye
from .injection import InjectionError, MetadataInjection, ValueInjection, \
    per_sample_numel
from .metrics import InferenceOutcome, compare_outcomes
from .resume import DEFAULT_CACHE_BUDGET

__all__ = [
    "CampaignError",
    "CampaignResult",
    "LayerCampaignResult",
    "LayerPlan",
    "run_campaign",
    "golden_inference",
    "sample_layer_plans",
    "execute_injection",
    "aggregate_layer",
    "plan_site",
    "record_matches_plan",
]

logger = logging.getLogger("repro.campaign")


class CampaignError(RuntimeError):
    """A campaign could not start or continue (clear, user-facing cause).

    Raised instead of bare tracebacks for orchestration failures the user
    can act on — e.g. the live observability server's ``--serve`` address
    already being bound by another process.
    """


@dataclass
class LayerCampaignResult:
    """Aggregated resilience statistics for one layer."""

    layer: str
    injections: int
    mean_delta_loss: float
    max_delta_loss: float
    mismatch_rate: float
    sdc_rate: float
    delta_losses: list[float] = field(default_factory=list, repr=False)
    #: wall-clock spent on this layer's injected inferences (seconds)
    seconds: float = 0.0
    #: sampling attempts that drew an already-seen or invalid site
    retries: int = 0
    #: per-fault-pattern statistics: ``"len{L}"`` groups records by
    #: flipped-bit count, ``"start{S}"`` groups multi-bit (burst) faults by
    #: their start position — the per-burst-length / per-alignment breakdown
    by_pattern: dict = field(default_factory=dict, repr=False)
    #: ECC verdict counts at this layer (corrected / detected / silent)
    ecc: dict = field(default_factory=dict, repr=False)


@dataclass
class CampaignResult:
    """Outcome of a whole injection campaign."""

    kind: str  # "value" | "metadata"
    location: str  # "neuron" | "weight"
    format_name: str
    golden_accuracy: float
    per_layer: dict[str, LayerCampaignResult]
    #: activation-cache counters when the campaign ran in resume mode
    resume_stats: dict | None = None
    #: run-level telemetry summary (wall-time, throughput, per-layer timing)
    telemetry: dict | None = None
    #: shards abandoned after exhausting their retry budget (parallel mode);
    #: each entry records shard id, layer, outstanding seqs, attempts, reason
    quarantined: list[dict] = field(default_factory=list)
    #: True when the campaign was stopped early (SIGINT/SIGTERM or a test
    #: abort); the result is partial but — with a journal — resumable
    interrupted: bool = False
    #: the write-ahead journal backing this run, if any
    journal_path: str | None = None
    #: the campaign fingerprint (identity of kind/location/format/seed/
    #: plans/data — see :func:`repro.exec.journal.campaign_fingerprint`)
    fingerprint: dict | None = None
    #: the run's row id in the campaign ledger, when one was configured
    #: (see :mod:`repro.obs.ledger`)
    ledger_run_id: int | None = None

    def mean_delta_loss(self) -> float:
        """Network-level resilience: ΔLoss averaged across layers (§V-A)."""
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mean_delta_loss for r in self.per_layer.values()]))

    def mean_mismatch_rate(self) -> float:
        if not self.per_layer:
            return 0.0
        return float(np.mean([r.mismatch_rate for r in self.per_layer.values()]))


@dataclass
class LayerPlan:
    """The deterministically sampled injection plans for one layer.

    Produced by :func:`sample_layer_plans` *before* any execution, so the
    same plan set can be executed serially, sharded across workers, or
    partially skipped when a journal already holds some records.
    """

    layer: str
    plans: list  # ValueInjection | MetadataInjection, in draw (seq) order
    #: sampling attempts that drew an already-seen or invalid site
    retries: int = 0
    #: InjectionError message when sampling stopped early (None = clean)
    sampling_error: str | None = None
    #: total unique (site, bits) space at this layer
    site_space: int = 0


def golden_inference(platform: GoldenEye, images: np.ndarray,
                     labels: np.ndarray) -> InferenceOutcome:
    """Run one clean (injection-free) inference under the platform's format."""
    platform.model.eval()
    with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"):
        # injected faults legitimately push activations to inf/NaN; the
        # metrics layer accounts for non-finite logits explicitly
        logits = platform.model(Tensor(np.asarray(images, dtype=np.float32)))
    return InferenceOutcome(logits=logits.data.copy(), labels=np.asarray(labels))


# ----------------------------------------------------------------------
# stage 1: deterministic plan sampling
# ----------------------------------------------------------------------
def _layer_value_geometry(platform: GoldenEye, layer: str,
                          location: str) -> tuple[int, int]:
    """(elements, word width) of a layer's value-injection space."""
    state = platform.layers[layer]
    if location == "neuron":
        shape = state.last_output_shape
        numel = per_sample_numel(shape) if shape is not None else 0
        width = state.neuron_format.bit_width if state.neuron_format else 32
    else:
        param = state.module._parameters.get("weight")
        numel = param.data.size if param is not None else 0
        width = state.weight_format.bit_width if state.weight_format else 32
    return numel, width


def _exhaustive_layer_plan(platform: GoldenEye, layer: str, kind: str,
                           location: str, model) -> LayerPlan:
    """Enumerate every (element, bit) site of ``layer`` in site-major order."""
    if kind != "value":
        raise ValueError(
            "the exhaustive fault model supports value injections only")
    numel, width = _layer_value_geometry(platform, layer, location)
    sites = numel * width
    if sites > EXHAUSTIVE_SITE_CAP:
        raise ValueError(
            f"exhaustive fault model: layer {layer!r} has {sites} single-bit "
            f"sites ({numel} elements x {width} bits), exceeding the cap of "
            f"{EXHAUSTIVE_SITE_CAP}; restrict layers= to smaller layers or "
            f"use the sampled estimator")
    plans = [ValueInjection(layer, location, index, bits,
                            op=model.op, persist=model.persist)
             for index in range(numel)
             for bits in model.enumerate_bits(width)]
    return LayerPlan(layer=layer, plans=plans, retries=0, site_space=sites)


def sample_layer_plans(
    platform: GoldenEye,
    layer: str,
    kind: str,
    location: str,
    budget: int,
    rng: np.random.Generator,
    num_bits: int = 1,
    fault_model=None,
) -> LayerPlan:
    """Draw up to ``budget`` unique injection plans for ``layer``.

    Consumes only ``rng`` — never the model — so the plan sequence is a pure
    function of the layer's child generator and the platform's (static)
    site-space geometry.  A late :class:`InjectionError` keeps the plans
    already drawn (``sampling_error`` is set and the layer degrades to a
    partial result instead of being discarded wholesale).

    ``fault_model`` (a :class:`repro.core.faultmodels.FaultModel`) selects
    the bit-pattern sampler; ``None`` is the classic single/multi-bit draw,
    byte-identical to campaigns that predate fault models.  An exhaustive
    model ignores ``budget`` and ``rng`` entirely and enumerates every
    single-bit site deterministically (refusing layers over
    :data:`~repro.core.faultmodels.EXHAUSTIVE_SITE_CAP`).
    """
    if fault_model is not None and fault_model.exhaustive:
        return _exhaustive_layer_plan(platform, layer, kind, location,
                                      fault_model)
    engine = platform.injector
    registry = get_registry()
    seen: set[tuple] = set()
    plans: list = []
    attempts = 0
    max_attempts = budget * 20
    sampling_error: str | None = None
    site_space = _site_space(platform, layer, kind, location, fault_model)
    while len(plans) < budget and attempts < max_attempts:
        attempts += 1
        try:
            if kind == "value":
                plan = engine.sample_value_injection(rng, layer=layer,
                                                     location=location,
                                                     num_bits=num_bits,
                                                     fault_model=fault_model)
                key = (plan.flat_index, plan.bits)
            else:
                plan = engine.sample_metadata_injection(rng, layer=layer,
                                                        location=location,
                                                        num_bits=num_bits)
                key = (plan.register, plan.bits)
        except InjectionError as exc:
            # site inapplicable (e.g. metadata on a plain FP layer).  Keep
            # whatever was already drawn: a partial layer result is strictly
            # better than throwing the performed work away.
            sampling_error = str(exc)
            registry.counter(
                "campaign.injection_errors_total",
                help="layers skipped because sampling raised InjectionError",
                kind=kind, location=location).inc()
            break
        if key in seen:
            if len(seen) >= site_space:
                break  # exhausted every unique site at this layer
            continue
        seen.add(key)
        plans.append(plan)
    retries = attempts - len(plans)
    if retries:
        registry.counter("campaign.sampling_retries_total",
                         help="sampling attempts that hit a seen/invalid site",
                         kind=kind, location=location).inc(retries)
    return LayerPlan(layer=layer, plans=plans, retries=retries,
                     sampling_error=sampling_error, site_space=site_space)


# ----------------------------------------------------------------------
# stage 2: single-injection execution
# ----------------------------------------------------------------------
def plan_site(plan) -> int:
    """The journal/trace site id of a plan (flat index or register)."""
    return int(plan.flat_index if isinstance(plan, ValueInjection)
               else plan.register)


def _classify_ecc(protection, plan) -> str | None:
    """ECC verdict for ``plan`` (None = unprotected), counting telemetry."""
    if protection is None:
        return None
    verdict = protection.classify(plan)
    if verdict is not None:
        get_registry().counter(
            f"ecc.{verdict}_total",
            help="planned faults by ECC verdict (corrected faults and "
                 "detected-unrecoverable errors never reach the datapath; "
                 "silent ones alias past the code)").inc()
    return verdict


def _stamp_fault_fields(record: dict, plan, fault_spec, verdict) -> dict:
    """Add the non-default fault-model fields to a record.

    Every field is emitted *only* when it differs from the classic
    single-bit-XOR default, so records of a default campaign stay
    byte-identical to pre-fault-model journals.
    """
    if fault_spec not in (None, "single"):
        record["fault"] = str(fault_spec)
    if getattr(plan, "op", "xor") != "xor":
        record["op"] = plan.op
    if getattr(plan, "persist", 0) > 0:
        record["persist"] = int(plan.persist)
    if verdict is not None:
        record["ecc"] = verdict
    return record


def _compose_temporal(faulty_logits, golden_logits, persist: int):
    """Decay a temporal fault: samples past ``persist`` see golden logits.

    The campaign treats each evaluation-batch sample as one successive
    inference; a fault persisting ``persist`` batches corrupts samples
    ``[0, persist)`` and leaves the rest golden.  Composed post-hoc from
    one armed forward pass, so temporal campaigns stay bit-identical
    across serial / parallel / fault-batched / resumed execution.
    """
    if persist <= 0 or persist >= len(faulty_logits):
        return faulty_logits
    composed = np.array(faulty_logits, copy=True)
    composed[persist:] = golden_logits[persist:]
    return composed


def _protected_record(plan, verdict: str, fault_spec, dur: float) -> dict:
    """Record for a fault the ECC corrected/detected: the golden outcome."""
    return _stamp_fault_fields({
        "kind": plan_kind(plan),
        "site": plan_site(plan),
        "bits": list(plan.bits),
        "delta_loss": 0.0,
        "mismatch_rate": 0.0,
        "sdc_rate": 0.0,
        "dur_s": dur,
    }, plan, fault_spec, verdict)


def execute_injection(
    platform: GoldenEye,
    golden: InferenceOutcome,
    images: np.ndarray,
    plan,
    use_resume: bool,
    fault_spec=None,
    protection=None,
) -> dict:
    """Run one injected inference for ``plan`` and return its record.

    The record is a plain dict (JSON/pickle friendly) holding everything
    aggregation needs: ``site``, ``bits``, ``delta_loss``,
    ``mismatch_rate``, ``sdc_rate`` and ``dur_s``.  Callers stamp ``layer``
    and ``seq``.  Execution is side-effect free on the platform (the armed
    corruption is always disarmed), so records are reproducible from the
    plan alone — the property the write-ahead journal relies on.

    ``protection`` (a :class:`repro.core.ecc.ProtectionModel`) is consulted
    first: a corrected or detected fault never reaches the datapath — the
    injected inference is skipped and the record carries the golden outcome
    flagged with its ``ecc`` verdict.  ``fault_spec`` (the campaign's
    fault-model spec string) is stamped into the record when non-default.
    """
    t_inj = time.perf_counter()
    verdict = _classify_ecc(protection, plan)
    if verdict in ("corrected", "detected"):
        return _protected_record(plan, verdict, fault_spec,
                                 time.perf_counter() - t_inj)
    with platform.injector.armed(plan):
        if use_resume:
            faulty_logits = platform.forward_from(plan.layer, images)
        else:
            faulty_logits = golden_inference(platform, images,
                                             golden.labels).logits
    faulty = InferenceOutcome(
        logits=_compose_temporal(faulty_logits, golden.logits,
                                 getattr(plan, "persist", 0)),
        labels=golden.labels,
    )
    metrics = compare_outcomes(golden, faulty)
    return _stamp_fault_fields({
        "kind": plan_kind(plan),
        "site": plan_site(plan),
        "bits": list(plan.bits),
        "delta_loss": float(metrics["delta_loss"]),
        "mismatch_rate": float(metrics["mismatch_rate"]),
        "sdc_rate": float(metrics["sdc_rate"]),
        "dur_s": time.perf_counter() - t_inj,
    }, plan, fault_spec, verdict)


def plan_kind(plan) -> str:
    """The injection kind of a plan (``"value"`` or ``"metadata"``)."""
    return "value" if isinstance(plan, ValueInjection) else "metadata"


def plans_can_batch(plans) -> bool:
    """True when ``plans`` may share one fault-axis batched forward pass.

    Batching tiles the evaluation batch K times and corrupts one replica
    lane per plan, so it applies only to same-layer neuron *value* plans
    sharing one bit operation — metadata and weight corruptions perturb
    state shared across the whole pass and must execute one at a time.
    """
    if not plans:
        return False
    first = plans[0]
    return all(isinstance(p, ValueInjection) and p.location == "neuron"
               and p.layer == first.layer and p.op == first.op
               for p in plans)


def execute_injection_batch(
    platform: GoldenEye,
    golden: InferenceOutcome,
    images: np.ndarray,
    plans,
    use_resume: bool,
    fault_spec=None,
    protection=None,
) -> list[dict]:
    """Run K independent injections in one batched pass; K per-plan records.

    Record ``k`` is bit-identical to :func:`execute_injection` for
    ``plans[k]`` (the batched forward is lane-exact — see
    :meth:`repro.core.goldeneye.GoldenEye.forward_from_batched`) except for
    ``dur_s``, which amortizes the shared forward across the K plans.
    Falls back to the sequential per-plan loop when the plans cannot share
    a pass (metadata/weight plans, mixed layers) or when K == 1.

    ECC-corrected/-detected plans are partitioned out before the forward —
    only the live (silent/unprotected) plans share the batched pass — and
    their golden-outcome records are spliced back in plan order, so the
    record sequence matches the serial path exactly.

    When tracing is enabled each call is wrapped in a ``campaign.batch``
    span (layer + chunk size) — the innermost level of the
    campaign → layer/shard → batch trace hierarchy rendered by
    ``repro timeline``.
    """
    plans = list(plans)
    if not plans:
        return []
    with get_tracer().span("campaign.batch", layer=plans[0].layer,
                           size=len(plans)):
        return _execute_injection_batch(platform, golden, images, plans,
                                        use_resume, fault_spec, protection)


def _execute_injection_batch(
    platform: GoldenEye,
    golden: InferenceOutcome,
    images: np.ndarray,
    plans,
    use_resume: bool,
    fault_spec=None,
    protection=None,
) -> list[dict]:
    out: list = [None] * len(plans)
    live: list[tuple[int, object, str | None]] = []
    for i, plan in enumerate(plans):
        verdict = _classify_ecc(protection, plan)
        if verdict in ("corrected", "detected"):
            out[i] = _protected_record(plan, verdict, fault_spec, 0.0)
        else:
            live.append((i, plan, verdict))
    live_plans = [plan for _, plan, _ in live]
    if not live_plans:
        return out
    if len(live_plans) == 1 or not plans_can_batch(live_plans):
        for i, plan, verdict in live:
            record = execute_injection(platform, golden, images, plan,
                                       use_resume, fault_spec=fault_spec)
            out[i] = _stamp_fault_fields(record, plan, fault_spec, verdict)
        return out
    t_batch = time.perf_counter()
    lane_logits = platform.forward_from_batched(live_plans[0].layer,
                                                live_plans, images)
    dur = (time.perf_counter() - t_batch) / len(live_plans)
    for k, (i, plan, verdict) in enumerate(live):
        faulty = InferenceOutcome(
            logits=_compose_temporal(lane_logits[k], golden.logits,
                                     getattr(plan, "persist", 0)),
            labels=golden.labels)
        metrics = compare_outcomes(golden, faulty)
        out[i] = _stamp_fault_fields({
            "kind": plan_kind(plan),
            "site": plan_site(plan),
            "bits": list(plan.bits),
            "delta_loss": float(metrics["delta_loss"]),
            "mismatch_rate": float(metrics["mismatch_rate"]),
            "sdc_rate": float(metrics["sdc_rate"]),
            "dur_s": dur,
        }, plan, fault_spec, verdict)
    return out


def record_matches_plan(record: dict, plan) -> bool:
    """True when a journaled record was produced by exactly this plan.

    ``layer`` and plan ``kind`` participate in the match: ``site`` + ``bits``
    alone can alias across layers (or across value/metadata campaigns that
    share a journal path), silently adopting a foreign record on resume.
    Records predating the ``kind`` field are matched on the remaining keys.
    """
    if "layer" in record and record["layer"] != plan.layer:
        return False
    if "kind" in record and record["kind"] != plan_kind(plan):
        return False
    if record.get("op", "xor") != getattr(plan, "op", "xor"):
        return False
    if int(record.get("persist", 0) or 0) != getattr(plan, "persist", 0):
        return False
    return (record.get("site") == plan_site(plan)
            and list(record.get("bits", ())) == list(plan.bits))


def emit_injection_telemetry(record: dict, kind: str, location: str) -> None:
    """Publish one executed record to the registry + tracer (parent side)."""
    registry = get_registry()
    registry.counter("campaign.injections_total",
                     help="injected inferences executed",
                     kind=kind, location=location).inc()
    registry.histogram("campaign.injection_seconds",
                       help="wall-clock per injected inference",
                       layer=record["layer"]).observe(record["dur_s"])
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event("campaign.injection", layer=record["layer"], kind=kind,
                     location=location, site=int(record["site"]),
                     bits=list(record["bits"]),
                     delta_loss=record["delta_loss"],
                     mismatch_rate=record["mismatch_rate"],
                     sdc_rate=record["sdc_rate"], dur_s=record["dur_s"])


# ----------------------------------------------------------------------
# stage 3: order-fixed aggregation
# ----------------------------------------------------------------------
def aggregate_layer(layer_plan: LayerPlan,
                    records: dict[int, dict]) -> LayerCampaignResult | None:
    """Fold one layer's records (keyed by ``seq``) into its statistics.

    Records are folded in plan (``seq``) order regardless of the order in
    which they were executed, so a 4-worker campaign, a serial campaign and
    a journal-resumed campaign all aggregate bit-identically.  Missing seqs
    (quarantined shards, interrupted runs) are simply absent — the layer
    degrades to the statistics of the records that exist.
    """
    ordered = [records[seq] for seq in sorted(records)]
    if not ordered:
        return None
    delta_losses = [r["delta_loss"] for r in ordered]
    mismatches = 0.0
    sdcs = 0.0
    pattern_groups: dict[str, list[dict]] = {}
    ecc_counts: dict[str, int] = {}
    for r in ordered:
        mismatches += r["mismatch_rate"]
        sdcs += r["sdc_rate"]
        verdict = r.get("ecc")
        if verdict:
            ecc_counts[verdict] = ecc_counts.get(verdict, 0) + 1
        bits = list(r.get("bits", ()))
        groups = [f"len{len(bits)}"]
        if len(bits) > 1:
            groups.append(f"start{min(bits)}")
        for g in groups:
            pattern_groups.setdefault(g, []).append(r)
    performed = len(ordered)
    by_pattern = {
        g: {
            "injections": len(rows),
            "sdc_rate": float(np.mean([r["sdc_rate"] for r in rows])),
            "mean_delta_loss": float(np.mean([r["delta_loss"] for r in rows])),
        }
        for g, rows in sorted(pattern_groups.items())
    }
    return LayerCampaignResult(
        layer=layer_plan.layer,
        injections=performed,
        mean_delta_loss=float(np.mean(delta_losses)),
        max_delta_loss=float(np.max(delta_losses)),
        mismatch_rate=mismatches / performed,
        sdc_rate=sdcs / performed,
        delta_losses=delta_losses,
        seconds=float(sum(r["dur_s"] for r in ordered)),
        retries=layer_plan.retries,
        by_pattern=by_pattern,
        ecc=ecc_counts,
    )


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
def run_campaign(
    platform: GoldenEye,
    images: np.ndarray,
    labels: np.ndarray,
    kind: str = "value",
    location: str = "neuron",
    injections_per_layer: int = 100,
    seed: int = 0,
    layers: list[str] | None = None,
    num_bits: int = 1,
    resume: bool = True,
    resume_budget_bytes: int | None = DEFAULT_CACHE_BUDGET,
    workers: int = 1,
    journal: str | None = None,
    shard_timeout: float | None = None,
    max_retries: int = 2,
    batch_records: int = 32,
    shared_cache: bool = True,
    fault_batch: int = 1,
    fault_model="single",
    protect="none",
    exec_config=None,
    serve=None,
    ledger=None,
) -> CampaignResult:
    """Run an injection campaign and aggregate ΔLoss / mismatch per layer.

    The platform must already be attached.  Each injection is unique within
    its layer (no repeated (index, bits) pair), mirroring the paper's "1000
    unique single-bit flip injections"; ``num_bits > 1`` switches to the
    multi-bit flip error model (several bits of the same word at once).

    Each layer samples from its own child generator derived from
    ``[seed, layer_index]`` (see the module docstring), so per-layer results
    are invariant under layer subsetting and reordering.

    ``resume=True`` (the default) checkpoints the golden pass and restarts
    each injected inference from its victim layer (see module docstring);
    ``resume_budget_bytes`` caps the activation cache (None = unlimited).
    Results are bit-identical either way.

    Robust execution
    ----------------
    ``workers >= 2`` shards the campaign across a supervised fork-based
    worker pool (:mod:`repro.exec`) — per-layer statistics are bit-identical
    to serial mode.  ``journal=PATH`` write-ahead-journals every completed
    injection; re-running the same campaign with the same journal skips the
    journaled work and reproduces the identical aggregate (crash/SIGKILL
    recovery).  ``shard_timeout`` bounds one shard attempt (seconds); a
    shard that keeps timing out or crashing is retried ``max_retries``
    times with exponential backoff and then **quarantined** — reported in
    :attr:`CampaignResult.quarantined` instead of failing the campaign.
    ``batch_records`` sets how many records a worker packs per result
    message / journal line, and ``shared_cache=False`` disables publishing
    the golden activation cache to shared memory (each worker then keeps
    its fork-inherited copy-on-write cache).  ``fault_batch=K`` evaluates K
    independent neuron-value injections per forward pass (fault-axis
    batching, see :func:`execute_injection_batch`) — per-plan records, seq
    ordering, journal framing and telemetry stay bit-identical to K=1.
    ``exec_config`` (a :class:`repro.exec.ExecConfig`) overrides every one
    of these knobs and exposes test hooks.

    Fault models & protection
    -------------------------
    ``fault_model`` selects how each injection chooses and perturbs bits
    (see :mod:`repro.core.faultmodels`): ``"single"`` (the default —
    byte-identical plans, records and journals to campaigns predating fault
    models), ``"burst2"``/``"burst4"`` (adjacent multi-bit upsets, with
    optional ``:strideS``/``:alignA`` options), ``"stuck0"``/``"stuck1"``
    (stuck-at defects), ``"exhaustive"`` (every single-bit site of every
    target layer, refused above
    :data:`~repro.core.faultmodels.EXHAUSTIVE_SITE_CAP` sites per layer)
    and ``"temporalN"`` (faults persisting N evaluation batches).
    Non-single models apply to ``kind="value"`` campaigns only.
    ``protect`` applies an ECC protection model
    (:mod:`repro.core.ecc`) at injection time: ``"secded"`` over value
    words, ``"parity"`` over shared metadata registers, or
    ``"secded+parity"``; corrected/detected faults skip the injected
    inference and record the golden outcome, flagged by verdict.  All
    execution modes stay bit-identical under every model.

    Live observability
    ------------------
    ``serve="host:port"`` starts an embedded observability server
    (:class:`repro.obs.live.LiveServer`) for the duration of the campaign:
    ``/metrics`` (live Prometheus exposition), ``/progress`` (the
    ``progress/v1`` JSON contract with per-layer done/total, EWMA
    throughput, ETA and in-flight SDC±Wilson-CI), ``/healthz`` (worker
    liveness) and ``/events`` (SSE trace-event stream).  A port already in
    use raises :class:`CampaignError` naming the address; the server is
    always shut down in a ``finally`` — a SIGINT mid-campaign still returns
    the partial resumable result with no dangling thread.  Passing an
    already-started :class:`~repro.obs.live.LiveServer` instance instead of
    an address attaches the campaign to it but leaves the lifecycle (and
    the final progress state, still being served) to the caller.  Progress
    is tracked identically for serial, parallel and fault-batched runs.

    Campaign ledger
    ---------------
    ``ledger`` points the run at a :mod:`campaign ledger <repro.obs.ledger>`
    — a sqlite path, an open :class:`~repro.obs.ledger.CampaignLedger`,
    or None to consult the ``REPRO_LEDGER`` environment variable (unset =
    no ledger).  When configured, the run's provenance and per-layer
    outcomes are recorded automatically at the end of the campaign —
    identically for serial, parallel, fault-batched and resumed
    execution; a resumed journal run *updates* its original row.  The
    write is failure-isolated (a broken ledger never fails the campaign)
    and timed into ``telemetry["ledger_seconds"]``; the row id lands in
    :attr:`CampaignResult.ledger_run_id`.
    """
    if not platform.attached:
        raise RuntimeError("attach() the GoldenEye platform before running a campaign")
    if kind not in ("value", "metadata"):
        raise ValueError(f"kind must be 'value' or 'metadata', got {kind!r}")
    model = parse_fault_model(fault_model)
    fault_spec = model.spec()
    if fault_spec != "single" and kind != "value":
        raise ValueError(
            f"fault model {fault_spec!r} applies to value injections only; "
            "metadata campaigns support only the 'single' model")
    protection = parse_protection(protect)
    protect_spec = protection.spec()
    if protect_spec == "none":
        protection = None
    all_layers = platform.layer_names()
    if layers is not None:
        unknown = [name for name in layers if name not in set(all_layers)]
        if unknown:
            raise ValueError(
                f"unknown layer(s) {unknown!r} in layers=; "
                f"instrumented layers: {', '.join(all_layers)}")
    if exec_config is not None:
        effective_workers = exec_config.workers
    else:
        effective_workers = max(1, int(workers or 1))

    from ..obs.live import CampaignProgress, LiveServer

    server: LiveServer | None = None
    owns_server = False
    if serve is not None:
        if isinstance(serve, LiveServer):
            server = serve
        else:
            server = LiveServer.start(str(serve))
            owns_server = True

    registry = get_registry()
    progress = CampaignProgress(kind=kind, location=location,
                                format_name=platform.format_name())
    previous_tracer = None
    if server is not None:
        server.attach(progress, registry)
        logger.info("live observability serving on %s", server.url)
        # compose — never replace — whatever tracer is configured, so the
        # /events SSE stream adds a consumer next to the JSONL sink
        previous_tracer = set_tracer(
            BroadcastTracer(get_tracer(), server.publish))
    tracer = get_tracer()
    started_at = time.time()
    t_campaign = time.perf_counter()
    if resume:
        platform.enable_resume(resume_budget_bytes)
        progress.resume_source = (
            lambda: platform.resume_session.stats.as_dict()
            if platform.resume_session is not None else {})
    try:
        if resume:
            logits = platform.capture_golden(images)  # also warms output shapes
            golden = InferenceOutcome(logits=logits, labels=np.asarray(labels))
        else:
            golden = golden_inference(platform, images, labels)

        layer_index = {name: i for i, name in enumerate(all_layers)}
        target_layers = list(layers) if layers is not None else all_layers
        logger.info(
            "campaign start: kind=%s location=%s format=%s layers=%d "
            "injections/layer=%d resume=%s workers=%d journal=%s", kind,
            location, platform.format_name(), len(target_layers),
            injections_per_layer, resume, effective_workers, journal)

        quarantined: list[dict] = []
        interrupted = False
        worker_resume_stats: list[dict] = []
        with tracer.span("campaign.run", kind=kind, location=location,
                         format=platform.format_name(), seed=seed,
                         injections_per_layer=injections_per_layer,
                         layers=len(target_layers), resume=resume,
                         workers=effective_workers) as run_span:
            # ---- stage 1: sample every layer's plans up front ------------
            sampling: dict[str, LayerPlan] = {}
            for layer in target_layers:
                rng = np.random.default_rng(
                    [seed, layer_index.get(layer, len(layer_index))])
                sampling[layer] = sample_layer_plans(
                    platform, layer, kind, location, injections_per_layer,
                    rng, num_bits,
                    fault_model=None if fault_spec == "single" else model)
            progress.set_plan({layer: len(sampling[layer].plans)
                               for layer in target_layers})

            # ---- campaign identity (journal + ledger share it) -----------
            from ..exec.journal import CampaignJournal, campaign_fingerprint
            fingerprint = campaign_fingerprint(
                kind=kind, location=location,
                format_name=platform.format_name(), seed=seed,
                injections_per_layer=injections_per_layer,
                num_bits=num_bits, layers=target_layers,
                images=images, labels=labels,
                fault=fault_spec, protect=protect_spec)

            # ---- write-ahead journal: load completed work ----------------
            journal_obj = None
            records: dict[tuple[str, int], dict] = {}
            journal_skipped = 0
            if journal is not None:
                journal_obj, completed = CampaignJournal.open(journal, fingerprint)
                for (layer, seq), rec in completed.items():
                    plan_list = sampling.get(layer)
                    if plan_list is None or seq >= len(plan_list.plans):
                        continue  # stale entry outside this campaign's plans
                    if not record_matches_plan(rec, plan_list.plans[seq]):
                        continue
                    records[(layer, seq)] = rec
                for (layer, seq), rec in records.items():
                    progress.record(layer, seq,
                                    float(rec.get("sdc_rate", 0.0) or 0.0),
                                    prefill=True)
                journal_skipped = len(records)
                if journal_skipped:
                    registry.counter(
                        "campaign.journal_skipped_total",
                        help="injections satisfied from the write-ahead "
                             "journal instead of re-executing").inc(journal_skipped)
                    logger.info("journal %s: resuming past %d completed "
                                "injections", journal, journal_skipped)

            # ---- stage 2: execute outstanding plans ----------------------
            try:
                if effective_workers >= 2:
                    from ..exec import ExecConfig
                    from ..exec.supervisor import run_parallel_campaign
                    cfg = exec_config if exec_config is not None else ExecConfig(
                        workers=effective_workers, shard_timeout=shard_timeout,
                        max_retries=max_retries,
                        batch_records=batch_records,
                        shared_cache=shared_cache,
                        fault_batch=fault_batch)
                    outcome = run_parallel_campaign(
                        platform, golden, images, target_layers, sampling,
                        kind, location, resume, cfg, journal_obj, records,
                        progress=progress, fault_spec=fault_spec,
                        protection=protection)
                    records = outcome.records
                    quarantined = outcome.quarantined
                    interrupted = outcome.interrupted
                    worker_resume_stats = outcome.worker_resume_stats
                else:
                    _run_serial(platform, golden, images, target_layers,
                                sampling, kind, location, resume,
                                journal_obj, records,
                                injection_latency=(
                                    exec_config.injection_latency
                                    if exec_config is not None else 0.0),
                                fault_batch=(
                                    exec_config.fault_batch
                                    if exec_config is not None
                                    else fault_batch),
                                progress=progress, fault_spec=fault_spec,
                                protection=protection)
            finally:
                if journal_obj is not None:
                    journal_obj.close()

            # ---- stage 3: aggregate in plan order ------------------------
            per_layer: dict[str, LayerCampaignResult] = {}
            for layer in target_layers:
                layer_records = {seq: rec for (name, seq), rec in records.items()
                                 if name == layer}
                stats = aggregate_layer(sampling[layer], layer_records)
                if stats is not None:
                    per_layer[layer] = stats
                    logger.debug("layer %s: %d injections in %.3fs "
                                 "(mean ΔLoss %.4f)", layer, stats.injections,
                                 stats.seconds, stats.mean_delta_loss)

            resume_stats = None
            if resume and platform.resume_session is not None:
                resume_stats = platform.resume_session.stats.as_dict()
                for wstats in worker_resume_stats:
                    for key in resume_stats:
                        resume_stats[key] += int(wstats.get(key, 0))
                if worker_resume_stats:
                    resume_stats["workers"] = len(worker_resume_stats)
                platform.resume_session.publish_metrics(registry)

            wall = time.perf_counter() - t_campaign
            injections_total = sum(r.injections for r in per_layer.values())
            retries_total = sum(r.retries for r in per_layer.values())
            throughput = injections_total / wall if wall > 0 else 0.0
            run_span.set(injections=injections_total, wall_s=wall,
                         injections_per_sec=throughput,
                         workers=effective_workers,
                         journal_skipped=journal_skipped,
                         quarantined=len(quarantined),
                         interrupted=interrupted)
        registry.gauge("campaign.injections_per_sec",
                       help="throughput of the most recent campaign").set(throughput)
        registry.gauge("campaign.wall_seconds").set(wall)
        logger.info("campaign done: %d injections in %.2fs (%.1f inj/s)%s%s",
                    injections_total, wall, throughput,
                    f" [{len(quarantined)} shard(s) quarantined]" if quarantined else "",
                    " [interrupted]" if interrupted else "")
        telemetry = {
            "wall_seconds": wall,
            "injections": injections_total,
            "injections_per_sec": throughput,
            "sampling_retries": retries_total,
            "workers": effective_workers,
            "journal_skipped": journal_skipped,
            "quarantined_shards": len(quarantined),
            "per_layer": {
                name: {"seconds": r.seconds, "injections": r.injections,
                       "retries": r.retries}
                for name, r in per_layer.items()
            },
        }
        if platform.numerics is not None:
            # merged registry view: identical for serial and parallel runs
            # (workers stream their numerics deltas back per shard)
            telemetry["numeric_health"] = platform.numerics.as_dict()
        progress.finish("interrupted" if interrupted else "done")
        result = CampaignResult(
            kind=kind,
            location=location,
            format_name=platform.format_name(),
            golden_accuracy=golden.accuracy,
            per_layer=per_layer,
            resume_stats=resume_stats,
            telemetry=telemetry,
            quarantined=quarantined,
            interrupted=interrupted,
            journal_path=str(journal) if journal is not None else None,
            fingerprint=fingerprint,
        )
        _record_to_ledger(
            result, ledger, seed=seed,
            injections_per_layer=injections_per_layer, num_bits=num_bits,
            workers=effective_workers,
            fault_batch=(exec_config.fault_batch
                         if exec_config is not None else fault_batch),
            layers=target_layers, started_at=started_at)
        return result
    finally:
        # finish() only transitions from "running", so a clean return (which
        # already sealed the state as done/interrupted) is not clobbered
        progress.finish("error")
        if previous_tracer is not None:
            set_tracer(previous_tracer)
        if owns_server and server is not None:
            # an address-started server lives exactly as long as the
            # campaign; SIGINT unwinds through here too, so no dangling
            # "repro-live-obs" thread survives an interrupted run
            server.close()
        # always release the activation cache — an injection raising mid-run
        # must not leak the full golden-pass cache (satellite of ISSUE 4)
        if resume:
            platform.clear_resume()


def _record_to_ledger(result: CampaignResult, ledger, *, seed: int,
                      injections_per_layer: int, num_bits: int, workers: int,
                      fault_batch: int, layers: list[str],
                      started_at: float) -> None:
    """Write ``result`` to the configured campaign ledger, if any.

    The ledger is observability, never a dependency: open/write failures
    are logged and swallowed, and the write is timed into
    ``telemetry["ledger_seconds"]`` so ``benchmarks/bench_ledger.py`` can
    hold it under 1% of campaign wall time.
    """
    from ..obs.ledger import resolve_ledger
    from ..obs.tracing import sink_path
    try:
        ledger_obj, owns = resolve_ledger(ledger)
    except Exception:  # noqa: BLE001 - a broken ledger never fails the run
        logger.warning("could not open campaign ledger", exc_info=True)
        return
    if ledger_obj is None:
        return
    t0 = time.perf_counter()
    try:
        result.ledger_run_id = ledger_obj.record_campaign(
            result, fingerprint=result.fingerprint, seed=seed,
            injections_per_layer=injections_per_layer, num_bits=num_bits,
            workers=workers, fault_batch=fault_batch, layers=layers,
            started_at=started_at, trace_path=sink_path(get_tracer()))
        logger.info("ledger %s: recorded run %s", ledger_obj.path,
                    result.ledger_run_id)
    except Exception:  # noqa: BLE001 - a broken ledger never fails the run
        logger.warning("campaign ledger write failed (run not recorded)",
                       exc_info=True)
    finally:
        if owns:
            try:
                ledger_obj.close()
            except Exception:  # noqa: BLE001
                pass
        if result.telemetry is not None:
            result.telemetry["ledger_seconds"] = time.perf_counter() - t0


def _run_serial(
    platform: GoldenEye,
    golden: InferenceOutcome,
    images: np.ndarray,
    target_layers: list[str],
    sampling: dict[str, LayerPlan],
    kind: str,
    location: str,
    use_resume: bool,
    journal_obj,
    records: dict[tuple[str, int], dict],
    injection_latency: float = 0.0,
    fault_batch: int = 1,
    progress=None,
    fault_spec=None,
    protection=None,
) -> None:
    """Execute all outstanding plans in-process, journaling each record.

    ``injection_latency`` mirrors :attr:`repro.exec.ExecConfig`'s knob of
    the same name: the emulated per-injection device latency is applied
    here exactly as in the workers, so serial-vs-parallel comparisons
    measure orchestration, not an asymmetric handicap.  ``fault_batch=K``
    chunks each layer's outstanding plans into fault-axis batched forwards
    (one emulated device round-trip per chunk); records, journal lines and
    telemetry are still emitted one per plan, in seq order.
    """
    tracer = get_tracer()
    registry = get_registry()
    latency = float(injection_latency or 0.0)
    chunk = max(1, int(fault_batch))
    for layer in target_layers:
        layer_plan = sampling[layer]
        if not layer_plan.plans:
            continue
        with tracer.span("campaign.layer", layer=layer, kind=kind) as layer_span:
            performed = 0
            outstanding = [(seq, plan)
                           for seq, plan in enumerate(layer_plan.plans)
                           if (layer, seq) not in records]
            for i in range(0, len(outstanding), chunk):
                group = outstanding[i:i + chunk]
                group_records = execute_injection_batch(
                    platform, golden, images, [plan for _, plan in group],
                    use_resume, fault_spec=fault_spec, protection=protection)
                for (seq, _), record in zip(group, group_records):
                    record["layer"] = layer
                    record["seq"] = seq
                    records[(layer, seq)] = record
                    performed += 1
                    if journal_obj is not None:
                        journal_obj.append_record(record)
                    emit_injection_telemetry(record, kind, location)
                    if progress is not None:
                        progress.record(layer, seq, record["sdc_rate"])
                        progress.maybe_log()
                if latency > 0.0:
                    time.sleep(latency)
            layer_span.set(performed=performed, retries=layer_plan.retries)
        if use_resume and platform.resume_session is not None:
            # keep the resume gauges live as the campaign progresses
            platform.resume_session.publish_metrics(registry)


def _site_space(platform: GoldenEye, layer: str, kind: str, location: str,
                fault_model=None) -> int:
    """Total number of unique (index/register, pattern) sites at this layer.

    Neuron value sites count *per-sample* elements: the batch axis is never
    injectable (each batch sample receives the same flip), so a 1-D layer
    output of shape ``(batch,)`` contributes exactly one element — not
    ``batch`` of them (see :func:`repro.core.injection.per_sample_numel`).
    A ``fault_model`` narrows the per-word pattern count (e.g. a burst can
    start at fewer positions than there are bits).
    """
    state = platform.layers[layer]
    if kind == "value":
        numel, width = _layer_value_geometry(platform, layer, location)
        patterns = (fault_model.patterns_per_word(width)
                    if fault_model is not None else width)
        return numel * patterns
    fmt = state.neuron_format if location == "neuron" else state.weight_format
    if fmt is None or not fmt.has_metadata:
        return 0
    return fmt.num_metadata_registers() * fmt.metadata_register_width()
