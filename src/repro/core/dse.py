"""Design-space exploration heuristic for number-format selection (§IV-B).

The paper's heuristic is a recursive binary-tree search over a format's
parameters (Fig. 5): measure the baseline FP32 accuracy, then walk a binary
tree over bitwidth — taking the "shorter" branch whenever the measured
accuracy stays within a threshold of baseline (default 1%) — and then a
second tree over the radix at the chosen bitwidth.  Exploring logarithmically
keeps the walk to at most ~16 evaluated nodes (Fig. 6) while still producing
multiple accuracy-preserving low-precision design points.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import nn
from ..formats.afp import AdaptivFloat
from ..formats.base import NumberFormat
from ..formats.bfp import BlockFloatingPoint
from ..formats.fp import FloatingPoint
from ..formats.fxp import FixedPoint
from ..formats.intq import IntegerQuant
from ..nn.tensor import Tensor
from ..obs.telemetry import get_registry
from ..obs.tracing import get_tracer
from .goldeneye import GoldenEye

logger = logging.getLogger("repro.dse")

__all__ = ["DseNode", "DseResult", "binary_tree_search", "evaluate_format_accuracy",
           "FAMILY_BUILDERS", "default_exp_bits"]


@dataclass(frozen=True)
class DseNode:
    """One evaluated point of the search tree."""

    index: int
    phase: str  # "bitwidth" | "radix"
    format: NumberFormat
    bitwidth: int
    radix: int
    accuracy: float
    acceptable: bool


@dataclass
class DseResult:
    """Full trace + outcome of one heuristic run."""

    family: str
    baseline_accuracy: float
    threshold: float
    nodes: list[DseNode] = field(default_factory=list)

    @property
    def acceptable_nodes(self) -> list[DseNode]:
        return [n for n in self.nodes if n.acceptable]

    @property
    def best(self) -> DseNode | None:
        """Lowest-cost acceptable point: min bitwidth, then min radix."""
        candidates = self.acceptable_nodes
        if not candidates:
            return None
        return min(candidates, key=lambda n: (n.bitwidth, n.radix))

    @property
    def nodes_visited(self) -> int:
        return len(self.nodes)


def default_exp_bits(bitwidth: int) -> int:
    """Default exponent width per total bitwidth (named-format conventions)."""
    table = {32: 8, 24: 8, 20: 6, 16: 5, 12: 5, 10: 5, 8: 4, 6: 3, 5: 2, 4: 2}
    return table.get(bitwidth, max(2, bitwidth // 3))


def _fp_builder(bitwidth: int, radix: int | None) -> NumberFormat:
    m = radix if radix is not None else bitwidth - 1 - default_exp_bits(bitwidth)
    e = bitwidth - 1 - m
    return FloatingPoint(max(e, 2), max(m, 1))


def _afp_builder(bitwidth: int, radix: int | None) -> NumberFormat:
    m = radix if radix is not None else bitwidth - 1 - default_exp_bits(bitwidth)
    e = bitwidth - 1 - m
    return AdaptivFloat(max(e, 2), max(m, 1))


def _bfp_builder(bitwidth: int, radix: int | None, block_size: int | None = 16) -> NumberFormat:
    m = radix if radix is not None else bitwidth - 1 - default_exp_bits(bitwidth)
    e = bitwidth - 1 - m
    return BlockFloatingPoint(max(e, 2), max(m, 1), block_size=block_size)


def _fxp_builder(bitwidth: int, radix: int | None) -> NumberFormat:
    f = radix if radix is not None else (bitwidth - 1) // 2
    i = bitwidth - 1 - f
    return FixedPoint(max(i, 0), max(f, 0))


def _int_builder(bitwidth: int, radix: int | None) -> NumberFormat:
    return IntegerQuant(bitwidth)


FAMILY_BUILDERS: dict[str, Callable[[int, int | None], NumberFormat]] = {
    "fp": _fp_builder,
    "afp": _afp_builder,
    "bfp": _bfp_builder,
    "fxp": _fxp_builder,
    "int": _int_builder,
}

#: radix search is meaningless for pure-integer quantization
_FAMILIES_WITH_RADIX = ("fp", "afp", "bfp", "fxp")


def evaluate_format_accuracy(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    number_format: NumberFormat | str,
    targets=("conv", "linear"),
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy of ``model`` under emulated ``number_format``."""
    platform = GoldenEye(model, number_format, targets=targets)
    correct = 0
    with platform:
        model.eval()
        with nn.no_grad():
            for start in range(0, len(images), batch_size):
                batch = Tensor(images[start : start + batch_size])
                logits = model(batch)
                correct += int((logits.argmax(axis=-1) == labels[start : start + batch_size]).sum())
    return correct / len(images)


def binary_tree_search(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    family: str = "fp",
    threshold: float = 0.01,
    bitwidths: tuple[int, ...] = (4, 6, 8, 10, 12, 16, 24, 32),
    targets=("conv", "linear"),
    max_nodes: int = 16,
    baseline_accuracy: float | None = None,
) -> DseResult:
    """Run the paper's binary-tree DSE heuristic for one format family.

    Phase 1 binary-searches the smallest acceptable *bitwidth* (taking the
    shorter-bitwidth branch whenever the node's accuracy is within
    ``threshold`` of baseline); phase 2 binary-searches the smallest
    acceptable *radix* at that bitwidth.  Returns the full node trace, which
    is what Fig. 6 plots (x-axis ordered by visit order).
    """
    if family not in FAMILY_BUILDERS:
        raise KeyError(f"unknown family {family!r}; known: {', '.join(FAMILY_BUILDERS)}")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be a fraction in (0, 1)")
    builder = FAMILY_BUILDERS[family]
    widths = sorted(set(bitwidths))
    if baseline_accuracy is None:
        # native FP32 profiling pass (no emulation overhead, §IV-B)
        baseline_accuracy = _native_accuracy(model, images, labels)
    floor = baseline_accuracy - threshold
    result = DseResult(family=family, baseline_accuracy=baseline_accuracy,
                       threshold=threshold)

    visited: dict[tuple[int, int], DseNode] = {}

    tracer = get_tracer()
    registry = get_registry()
    registry.gauge("dse.baseline_accuracy", family=family).set(baseline_accuracy)

    def evaluate(bitwidth: int, radix: int | None, phase: str) -> DseNode:
        fmt = builder(bitwidth, radix)
        key = (bitwidth, fmt.radix)
        if key in visited:  # phase 2 may land on phase 1's default split
            return visited[key]
        t0 = time.perf_counter()
        with tracer.span("dse.node", family=family, phase=phase,
                         format=fmt.name, bitwidth=bitwidth) as node_span:
            accuracy = evaluate_format_accuracy(model, images, labels, fmt,
                                                targets=targets)
            node_span.set(accuracy=accuracy, acceptable=bool(accuracy >= floor))
        registry.counter("dse.nodes_total",
                         help="DSE tree nodes evaluated", family=family).inc()
        registry.histogram("dse.node_seconds",
                           help="wall-clock per DSE node evaluation",
                           family=family).observe(time.perf_counter() - t0)
        logger.debug("dse node %s %s: accuracy %.4f (floor %.4f)",
                     phase, fmt.name, accuracy, floor)
        node = DseNode(
            index=len(result.nodes),
            phase=phase,
            format=fmt,
            bitwidth=bitwidth,
            radix=fmt.radix,
            accuracy=accuracy,
            acceptable=accuracy >= floor,
        )
        result.nodes.append(node)
        visited[key] = node
        return node

    # ---- phase 1: binary tree over bitwidth -------------------------------
    lo, hi = 0, len(widths) - 1
    best_width: int | None = None
    while lo <= hi and len(result.nodes) < max_nodes:
        mid = (lo + hi) // 2
        node = evaluate(widths[mid], None, "bitwidth")
        if node.acceptable:
            best_width = widths[mid]
            hi = mid - 1  # aggressively try shorter bitwidths
        else:
            lo = mid + 1
    if best_width is None:
        # nothing acceptable: fall back to the widest point for phase 2
        best_width = widths[-1]

    # ---- phase 2: binary tree over radix at the chosen bitwidth -----------
    if family in _FAMILIES_WITH_RADIX and len(result.nodes) < max_nodes:
        radix_lo, radix_hi = _radix_range(family, best_width)
        lo, hi = radix_lo, radix_hi
        while lo <= hi and len(result.nodes) < max_nodes:
            mid = (lo + hi) // 2
            node = evaluate(best_width, mid, "radix")
            if node.acceptable:
                hi = mid - 1  # aggressively try a shorter radix
            else:
                lo = mid + 1
    return result


def _radix_range(family: str, bitwidth: int) -> tuple[int, int]:
    """Valid radix (mantissa/fraction bits) interval at a given bitwidth."""
    if family in ("fp", "afp", "bfp"):
        return 1, max(bitwidth - 3, 1)  # leave >= 2 exponent bits
    return 1, max(bitwidth - 2, 1)  # fxp: leave >= 1 integer bit


def _native_accuracy(model: nn.Module, images: np.ndarray, labels: np.ndarray,
                     batch_size: int = 64) -> float:
    model.eval()
    correct = 0
    with nn.no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            correct += int((logits.argmax(axis=-1) == labels[start : start + batch_size]).sum())
    return correct / len(images)
