"""``repro.core`` — the GoldenEye platform: emulation hooks, injection engine,
resilience metrics, campaigns, DSE heuristic, and the range detector."""

from .campaign import (
    CampaignError,
    CampaignResult,
    LayerCampaignResult,
    golden_inference,
    run_campaign,
)
from .detector import RangeDetector
from .dse import (
    DseNode,
    DseResult,
    FAMILY_BUILDERS,
    binary_tree_search,
    default_exp_bits,
    evaluate_format_accuracy,
)
from .gradinject import (
    FaultyTrainingResult,
    GradientInjection,
    GradientInjector,
    train_with_gradient_faults,
)
from .goldeneye import GoldenEye, LayerState, TARGET_KINDS, default_target_types
from .injection import (
    InjectionEngine,
    InjectionError,
    MetadataInjection,
    ValueInjection,
    per_sample_numel,
)
from .metrics import (
    InferenceOutcome,
    compare_outcomes,
    cross_entropy_values,
    delta_loss,
    mismatch_count,
    mismatch_rate,
    sdc_classify,
    softmax_probs,
)
from .resume import (
    ActivationCache,
    CacheStats,
    DEFAULT_CACHE_BUDGET,
    ResumeSession,
    publish_cache_metrics,
)
from .sites import INJECTION_SITES, InjectionSite, injection_sites, site_by_name

__all__ = [
    "ActivationCache",
    "CacheStats",
    "DEFAULT_CACHE_BUDGET",
    "ResumeSession",
    "GradientInjection",
    "GradientInjector",
    "FaultyTrainingResult",
    "train_with_gradient_faults",
    "GoldenEye",
    "LayerState",
    "TARGET_KINDS",
    "default_target_types",
    "InjectionEngine",
    "InjectionError",
    "ValueInjection",
    "MetadataInjection",
    "per_sample_numel",
    "publish_cache_metrics",
    "RangeDetector",
    "InferenceOutcome",
    "compare_outcomes",
    "softmax_probs",
    "cross_entropy_values",
    "delta_loss",
    "mismatch_count",
    "mismatch_rate",
    "sdc_classify",
    "CampaignError",
    "CampaignResult",
    "LayerCampaignResult",
    "run_campaign",
    "golden_inference",
    "DseNode",
    "DseResult",
    "binary_tree_search",
    "evaluate_format_accuracy",
    "default_exp_bits",
    "FAMILY_BUILDERS",
    "InjectionSite",
    "INJECTION_SITES",
    "injection_sites",
    "site_by_name",
]
