"""Toggleable range detector (paper §V-B), modeled on Ranger-style clipping.

The detector is profiled on clean inferences — recording each instrumented
layer's observed activation range — and then, when active, clamps every
layer's output to its profiled range.  Out-of-range values produced by an
injected fault are pulled back to the boundary, which is the low-cost
software-directed protection the paper references; the detector also counts
how many values it clipped so campaigns can report detection rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RangeDetector"]


@dataclass
class RangeDetector:
    """Per-layer activation-range profile with clamp-based correction."""

    #: profiled (low, high) bounds per layer name
    bounds: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: when False the detector observes ranges; when True it clamps to them
    active: bool = False
    #: number of clipped elements since the last reset, per layer
    detections: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def observe(self, layer: str, tensor: np.ndarray) -> None:
        """Extend ``layer``'s profiled range to cover ``tensor``."""
        low = float(np.min(tensor))
        high = float(np.max(tensor))
        if layer in self.bounds:
            old_low, old_high = self.bounds[layer]
            self.bounds[layer] = (min(low, old_low), max(high, old_high))
        else:
            self.bounds[layer] = (low, high)

    # ------------------------------------------------------------------
    # protection
    # ------------------------------------------------------------------
    def clamp(self, layer: str, tensor: np.ndarray) -> np.ndarray:
        """Clamp ``tensor`` to the profiled range (observe when profiling)."""
        if not self.active:
            self.observe(layer, tensor)
            return tensor
        if layer not in self.bounds:
            return tensor  # never profiled: pass through unprotected
        low, high = self.bounds[layer]
        with np.errstate(invalid="ignore"):
            out_of_range = np.count_nonzero((tensor < low) | (tensor > high))
            nan_count = np.count_nonzero(np.isnan(tensor))
        if out_of_range or nan_count:
            self.detections[layer] = self.detections.get(layer, 0) + int(out_of_range + nan_count)
            tensor = np.nan_to_num(tensor, nan=0.0, posinf=high, neginf=low)
            tensor = np.clip(tensor, low, high)
        return tensor

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def reset_detections(self) -> None:
        self.detections.clear()

    @property
    def total_detections(self) -> int:
        return sum(self.detections.values())
