"""Fault models: how a hardware fault chooses and perturbs bits (§III-B+).

GoldenEye's original campaigns assume the classic software SEU model — one
(or ``num_bits`` independent) uniformly sampled XOR bit-flips per injection.
Real SEU sweeps cover a richer space (the ECC-model exemplar's burst and
exhaustive modes, PyTorchFI-extension-scale fault spaces), so the campaign
runner now samples through a :class:`FaultModel`:

* :class:`SingleBit` — the default; bit-identical sampling (same RNG
  consumption, same plans, same records) to every pre-fault-model campaign.
* :class:`Burst` — ``length`` adjacent bits (``stride`` apart, start
  aligned to ``start_align``) flipped together as one XOR mask, modelling a
  multi-bit upset from one particle strike.  Wraparound is refused: a burst
  must fit inside the word.
* :class:`StuckAt` — the chosen bit is *forced* to 0 or 1 (mask-clear /
  mask-set instead of XOR), modelling a latched defect.  A stuck-at fault
  at a bit already holding that value is a no-op — exactly the hardware
  semantics, and exactly what the campaign measures.
* :class:`Exhaustive` — every ``(element, bit)`` single-bit site of the
  layer, enumerated in deterministic site-major order (element 0 bits
  0..w-1, element 1, ...).  The enumeration ignores the sampled budget and
  is journal-resumable like any other plan list; layers whose site space
  exceeds :data:`EXHAUSTIVE_SITE_CAP` are refused with an error naming the
  cap.
* :class:`Temporal` — a single-bit fault that *persists* for ``persist``
  consecutive evaluation batches before decaying.  The campaign treats each
  sample of the evaluation batch as one successive inference, so samples
  ``[0, persist)`` see the corrupted network and the rest see the golden
  one — composed from a single armed forward pass, which keeps temporal
  campaigns bit-identical across serial / parallel / fault-batched /
  journal-resumed execution.

Every model is identified by a canonical *spec string* (``"single"``,
``"burst2"``, ``"burst4:stride2"``, ``"stuck0"``, ``"stuck1"``,
``"exhaustive"``, ``"temporal3"``) that round-trips through
:func:`parse_fault_model`, travels in journal headers / records, and is
what the ``--fault-model`` CLI flag accepts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultModel",
    "SingleBit",
    "Burst",
    "StuckAt",
    "Exhaustive",
    "Temporal",
    "BURST_LENGTHS",
    "EXHAUSTIVE_SITE_CAP",
    "VALID_SPECS",
    "parse_fault_model",
]

#: burst lengths the model (and the ``--burst`` flag) accepts
BURST_LENGTHS = (2, 4)

#: largest per-layer site space :class:`Exhaustive` will enumerate; larger
#: layers are refused with an error naming this cap (use the sampled
#: estimator there — see the CI ``fault-models`` job for the consistency
#: check between the two)
EXHAUSTIVE_SITE_CAP = 4096

#: human-readable summary of every accepted spec (used in error messages)
VALID_SPECS = ("single, burst2[:strideS][:alignA], burst4[:strideS][:alignA], "
               "stuck0, stuck1, exhaustive, temporalN")


@dataclass(frozen=True)
class FaultModel:
    """Base fault model: sampled single/multi-bit XOR flips."""

    #: how the bit mask is applied to the encoded word
    op: str = "xor"  # "xor" | "set" | "clear"
    #: evaluation batches the fault survives (0 = the whole evaluation,
    #: i.e. the classic every-sample-sees-the-fault semantics)
    persist: int = 0
    #: True when the model enumerates every site instead of sampling
    exhaustive: bool = False

    def spec(self) -> str:
        raise NotImplementedError

    def sample_bits(self, rng: np.random.Generator, width: int,
                    num_bits: int = 1) -> tuple[int, ...]:
        """Draw one injection's bit positions from ``rng`` (MSB-first)."""
        raise NotImplementedError

    def patterns_per_word(self, width: int) -> int:
        """Distinct bit patterns this model can place in one word."""
        raise NotImplementedError


@dataclass(frozen=True)
class SingleBit(FaultModel):
    """The default model: ``num_bits`` uniformly sampled XOR flips.

    Sampling consumes the layer RNG exactly like the pre-fault-model
    engine (one ``rng.choice(width, num_bits)`` draw after the site index),
    so campaigns run under ``SingleBit`` are byte-identical — plans,
    records, journals — to campaigns run before fault models existed.
    """

    def spec(self) -> str:
        return "single"

    def sample_bits(self, rng, width, num_bits=1):
        return tuple(sorted(
            rng.choice(width, size=num_bits, replace=False).tolist()))

    def patterns_per_word(self, width):
        return width


@dataclass(frozen=True)
class Burst(FaultModel):
    """``length`` bits, ``stride`` apart, flipped together as one XOR mask."""

    length: int = 2
    stride: int = 1
    start_align: int = 1

    def __post_init__(self):
        if self.length not in BURST_LENGTHS:
            raise ValueError(
                f"burst length must be one of {set(BURST_LENGTHS)}, "
                f"got {self.length}")
        if self.stride < 1:
            raise ValueError(f"burst stride must be >= 1, got {self.stride}")
        if self.start_align < 1:
            raise ValueError(
                f"burst start alignment must be >= 1, got {self.start_align}")

    def spec(self) -> str:
        out = f"burst{self.length}"
        if self.stride != 1:
            out += f":stride{self.stride}"
        if self.start_align != 1:
            out += f":align{self.start_align}"
        return out

    def span(self) -> int:
        """Bits covered from the first to the last flipped position."""
        return (self.length - 1) * self.stride + 1

    def valid_starts(self, width: int) -> range:
        """Aligned start positions whose burst fits inside the word.

        Empty when the span exceeds the word — wraparound is refused, not
        wrapped (a burst never crosses the MSB/LSB boundary).
        """
        return range(0, max(0, width - self.span() + 1), self.start_align)

    def bits_at(self, start: int, width: int) -> tuple[int, ...]:
        bits = tuple(start + i * self.stride for i in range(self.length))
        if start < 0 or bits[-1] >= width:
            raise ValueError(
                f"{self.spec()} starting at bit {start} does not fit a "
                f"{width}-bit word (wraparound is refused)")
        return bits

    def sample_bits(self, rng, width, num_bits=1):
        starts = self.valid_starts(width)
        if not len(starts):
            raise ValueError(
                f"{self.spec()} spans {self.span()} bits and cannot fit a "
                f"{width}-bit word (wraparound is refused)")
        start = starts[int(rng.integers(len(starts)))]
        return self.bits_at(start, width)

    def patterns_per_word(self, width):
        return len(self.valid_starts(width))


@dataclass(frozen=True)
class StuckAt(FaultModel):
    """One uniformly sampled bit forced to ``value`` (0 or 1)."""

    value: int = 0

    def __post_init__(self):
        if self.value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {self.value}")
        object.__setattr__(self, "op", "set" if self.value else "clear")

    def spec(self) -> str:
        return f"stuck{self.value}"

    def sample_bits(self, rng, width, num_bits=1):
        return (int(rng.integers(width)),)

    def patterns_per_word(self, width):
        return width


@dataclass(frozen=True)
class Exhaustive(FaultModel):
    """Every (element, bit) single-bit site, in deterministic order."""

    def __post_init__(self):
        object.__setattr__(self, "exhaustive", True)

    def spec(self) -> str:
        return "exhaustive"

    def enumerate_bits(self, width: int):
        """All single-bit patterns of one word, MSB to LSB."""
        return ((b,) for b in range(width))

    def sample_bits(self, rng, width, num_bits=1):
        raise ValueError("the exhaustive fault model enumerates sites; "
                         "it does not sample")

    def patterns_per_word(self, width):
        return width


@dataclass(frozen=True)
class Temporal(FaultModel):
    """A single-bit fault persisting for ``persist`` evaluation batches."""

    def __post_init__(self):
        if self.persist < 1:
            raise ValueError(
                f"temporal persistence must be >= 1, got {self.persist}")

    def spec(self) -> str:
        return f"temporal{self.persist}"

    def sample_bits(self, rng, width, num_bits=1):
        return tuple(sorted(
            rng.choice(width, size=num_bits, replace=False).tolist()))

    def patterns_per_word(self, width):
        return width


def _parse_burst(spec: str) -> Burst:
    head, *opts = spec.split(":")
    length = int(head[len("burst"):])
    stride, align = 1, 1
    for opt in opts:
        if opt.startswith("stride") and opt[len("stride"):].isdigit():
            stride = int(opt[len("stride"):])
        elif opt.startswith("align") and opt[len("align"):].isdigit():
            align = int(opt[len("align"):])
        else:
            raise ValueError(
                f"unknown burst option {opt!r} in fault model {spec!r}; "
                f"valid options: strideS (S >= 1), alignA (A >= 1)")
    return Burst(length=length, stride=stride, start_align=align)


def parse_fault_model(spec: "str | FaultModel | None") -> FaultModel:
    """Parse a fault-model spec string into its model (round-trippable).

    ``None`` and an already-constructed :class:`FaultModel` pass through;
    every invalid spec raises ``ValueError`` naming the valid values.
    """
    if spec is None:
        return SingleBit()
    if isinstance(spec, FaultModel):
        return spec
    text = str(spec).strip().lower()
    try:
        if text == "single":
            return SingleBit()
        if text.startswith("burst") and len(text) > len("burst") \
                and text[len("burst")].isdigit():
            return _parse_burst(text)
        if text in ("stuck0", "stuck1"):
            return StuckAt(value=int(text[-1]))
        if text == "exhaustive":
            return Exhaustive()
        if text.startswith("temporal") and text[len("temporal"):].isdigit():
            return Temporal(persist=int(text[len("temporal"):]))
    except ValueError as exc:
        raise ValueError(f"invalid fault model {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown fault model {spec!r}; valid models: {VALID_SPECS}")
