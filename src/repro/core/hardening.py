"""Selective-hardening policy engine: which layers to protect first.

Protecting *every* word of a network with SECDED costs ~40% extra storage
at 16-bit words; the empirical result this engine operationalises is that
SDC vulnerability is wildly non-uniform across layers (Fig. 7), so most of
the protection benefit comes from hardening a small, well-chosen subset.

The engine shares its philosophy with the format DSE heuristic
(:mod:`repro.core.dse`): both search a cost/benefit frontier measured on
the real model — the DSE walks format parameters accepting the cheapest
accuracy-preserving point, while the hardening engine ranks layers by
**SDC reduction per protection bit** and greedily selects them into an
optional bit budget.  A typical pipeline runs the DSE first to choose a
format, then a fault-injection campaign under that format, then this
engine over the campaign's per-layer statistics.

Inputs
------
* an (unprotected) value-injection :class:`~repro.core.campaign.CampaignResult`;
* the per-layer word geometry (``layer -> {"words", "width"}``, see
  :func:`layer_geometry`);
* a protection model spec (:mod:`repro.core.ecc`).

For each layer the engine estimates the **protected** SDC rate by
replaying the campaign's per-pattern statistics
(:attr:`~repro.core.campaign.LayerCampaignResult.by_pattern`) through the
protection model's verdict function: pattern groups the code corrects or
detects contribute zero silent corruption, groups that alias past it keep
their measured SDC.  The estimate therefore needs **no second campaign**
— and because verdicts are a pure function of fault geometry, it matches
what a protected re-run measures (the CI ``fault-models`` job asserts the
protected-run SDC is never above the unprotected one).

The report is a plain-dict ``harden/v1`` document (JSON-friendly, schema
checked by :func:`validate_hardening_report`) ranking layers
most-valuable-first; ``repro harden`` prints it as a table and can write
the JSON.
"""

from __future__ import annotations

from .ecc import parse_protection, protection_cost_bits

__all__ = [
    "HARDEN_SCHEMA",
    "layer_geometry",
    "build_hardening_report",
    "validate_hardening_report",
    "render_hardening_report",
]

HARDEN_SCHEMA = "harden/v1"

#: every field a ranking entry must carry
_ENTRY_FIELDS = frozenset((
    "rank", "layer", "words", "width", "cost_bits", "sdc_rate",
    "protected_sdc_rate", "sdc_reduction", "score", "selected",
))


def layer_geometry(platform, location: str = "neuron") -> dict:
    """Per-layer word geometry: ``layer -> {"words", "width"}``.

    Words are the protectable storage units at ``location`` — per-sample
    activation elements for ``"neuron"``, parameter elements for
    ``"weight"`` — each ``width`` bits wide under the layer's format.
    """
    from .campaign import _layer_value_geometry
    out = {}
    for name in platform.layer_names():
        words, width = _layer_value_geometry(platform, name, location)
        out[name] = {"words": int(words), "width": int(width)}
    return out


def _protected_sdc(result, protection) -> float:
    """Estimated SDC rate of one layer after applying ``protection``.

    Replays the layer's per-bit-count pattern groups through the verdict
    function: corrected/detected groups contribute zero, silent (and
    uncovered) groups keep their measured SDC.  Falls back to classifying
    a single-bit fault when the aggregate carries no pattern breakdown
    (e.g. a result loaded from an old journal).
    """
    groups = {key: stats for key, stats in result.by_pattern.items()
              if key.startswith("len")}
    if not groups:
        verdict = protection.classify_bits("value", 1)
        return 0.0 if verdict in ("corrected", "detected") else result.sdc_rate
    total = 0
    silent_sdc = 0.0
    for key, stats in groups.items():
        n = int(stats["injections"])
        total += n
        verdict = protection.classify_bits("value", int(key[len("len"):]))
        if verdict not in ("corrected", "detected"):
            silent_sdc += float(stats["sdc_rate"]) * n
    return silent_sdc / total if total else 0.0


def build_hardening_report(
    campaign,
    geometry: dict,
    protection="secded",
    budget_bits: int | None = None,
) -> dict:
    """Rank layers by SDC reduction per protection bit; greedy budget fill.

    ``campaign`` must be a *value*-injection campaign (the protection
    models cover encoded value words); ``geometry`` comes from
    :func:`layer_geometry`.  ``budget_bits`` caps the total protection
    storage: ranked layers are selected greedily while they fit (a layer
    that doesn't fit is skipped, later cheaper ones may still be taken).
    Layers whose estimated reduction is zero are ranked but never selected
    — protecting them spends bits for nothing.
    """
    if campaign.kind != "value":
        raise ValueError(
            f"hardening ranks value-injection campaigns, got kind="
            f"{campaign.kind!r} (protection models cover value words)")
    if budget_bits is not None and budget_bits < 0:
        raise ValueError(f"budget_bits must be >= 0, got {budget_bits}")
    model = parse_protection(protection)
    entries = []
    for layer, result in campaign.per_layer.items():
        geo = geometry.get(layer)
        if geo is None:
            continue
        words, width = int(geo["words"]), int(geo["width"])
        cost = protection_cost_bits(words, width, model)
        protected = _protected_sdc(result, model)
        reduction = max(0.0, float(result.sdc_rate) - protected)
        entries.append({
            "layer": layer,
            "words": words,
            "width": width,
            "cost_bits": cost,
            "sdc_rate": float(result.sdc_rate),
            "protected_sdc_rate": float(protected),
            "sdc_reduction": reduction,
            "score": reduction / cost if cost > 0 else 0.0,
            "injections": int(result.injections),
        })
    entries.sort(key=lambda e: (-e["score"], e["cost_bits"], e["layer"]))
    selected = []
    spent = 0
    for rank, entry in enumerate(entries, 1):
        entry["rank"] = rank
        take = entry["sdc_reduction"] > 0.0 and entry["cost_bits"] > 0
        if take and budget_bits is not None:
            take = spent + entry["cost_bits"] <= budget_bits
        entry["selected"] = bool(take)
        if take:
            selected.append(entry["layer"])
            spent += entry["cost_bits"]
    report = {
        "schema": HARDEN_SCHEMA,
        "protection": model.spec(),
        "format": campaign.format_name,
        "location": campaign.location,
        "budget_bits": None if budget_bits is None else int(budget_bits),
        "baseline_sdc_rate": (sum(e["sdc_rate"] for e in entries)
                              / len(entries) if entries else 0.0),
        "ranking": entries,
        "selected": selected,
        "selected_cost_bits": int(spent),
    }
    return validate_hardening_report(report)


def validate_hardening_report(report: dict) -> dict:
    """Check a ``harden/v1`` report's schema and internal consistency.

    Raises ``ValueError`` on any violation: wrong schema tag, a ranking
    entry missing fields, scores out of descending order, a score that
    does not equal its reduction/cost, or a selection exceeding the
    budget.  Returns the report unchanged so builders can validate-on-exit.
    """
    if not isinstance(report, dict) or report.get("schema") != HARDEN_SCHEMA:
        raise ValueError(
            f"not a {HARDEN_SCHEMA} report: schema="
            f"{report.get('schema') if isinstance(report, dict) else report!r}")
    ranking = report.get("ranking")
    if not isinstance(ranking, list):
        raise ValueError("harden report 'ranking' must be a list")
    budget = report.get("budget_bits")
    prev_score = None
    spent = 0
    selected = []
    for i, entry in enumerate(ranking):
        missing = _ENTRY_FIELDS - set(entry)
        if missing:
            raise ValueError(
                f"ranking entry {i} missing fields: {sorted(missing)}")
        if entry["rank"] != i + 1:
            raise ValueError(
                f"ranking entry {i} has rank {entry['rank']}, expected {i + 1}")
        score = float(entry["score"])
        if prev_score is not None and score > prev_score + 1e-12:
            raise ValueError(
                f"ranking is not sorted by score: entry {i} "
                f"({score}) outranks its predecessor ({prev_score})")
        prev_score = score
        cost = int(entry["cost_bits"])
        expected = (entry["sdc_reduction"] / cost) if cost > 0 else 0.0
        if abs(score - expected) > 1e-9:
            raise ValueError(
                f"entry {i} score {score} != sdc_reduction/cost_bits "
                f"({expected})")
        reduction = float(entry["sdc_reduction"])
        if not (-1e-9 <= reduction <= entry["sdc_rate"] + 1e-9):
            raise ValueError(
                f"entry {i} sdc_reduction {reduction} outside "
                f"[0, sdc_rate={entry['sdc_rate']}]")
        if entry["selected"]:
            selected.append(entry["layer"])
            spent += cost
            if reduction <= 0.0:
                raise ValueError(
                    f"entry {i} ({entry['layer']}) selected with zero "
                    "SDC reduction")
    if budget is not None and spent > budget:
        raise ValueError(
            f"selected layers cost {spent} bits, exceeding the "
            f"{budget}-bit budget")
    if list(report.get("selected", [])) != selected:
        raise ValueError("'selected' does not match the entries flagged "
                         "selected=true in ranking order")
    if int(report.get("selected_cost_bits", -1)) != spent:
        raise ValueError(
            f"selected_cost_bits {report.get('selected_cost_bits')} != "
            f"sum of selected entry costs ({spent})")
    return report


def render_hardening_report(report: dict) -> str:
    """Human-readable table of a ``harden/v1`` report."""
    from ..analysis.tables import render_table
    rows = []
    for entry in report["ranking"]:
        rows.append((
            str(entry["rank"]),
            entry["layer"],
            f"{entry['sdc_rate']:.4f}",
            f"{entry['protected_sdc_rate']:.4f}",
            f"{entry['sdc_reduction']:.4f}",
            str(entry["cost_bits"]),
            f"{entry['score']:.3e}",
            "yes" if entry["selected"] else "-",
        ))
    budget = report.get("budget_bits")
    title = (f"harden-first ranking under {report['protection']} "
             f"({report['format']}, {report['location']})")
    if budget is not None:
        title += f" — budget {budget} bits, spent {report['selected_cost_bits']}"
    return render_table(
        ["rank", "layer", "SDC", "SDC(prot)", "reduction", "cost bits",
         "reduction/bit", "harden"],
        rows, title=title)
