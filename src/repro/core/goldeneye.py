"""The GoldenEye platform: number-format emulation over an instrumented model.

Implements the paper's §III-A flow.  The compute fabric (numpy FP32 here) runs
the model natively; a :class:`GoldenEye` instance attaches forward hooks to
the target layers, and each hook reads the layer's FP32 output, converts it to
the nearest value representable in the emulated format, and writes it back as
FP32 — while capturing the format's hardware metadata (shared exponents, scale
factors, exponent biases) for the error-injection engine.

Weights are converted once at attach time ("weight injections can be performed
offline"), neurons on every forward pass.  Backpropagation works through the
emulation via a straight-through estimator, so training with emulated formats
is supported (§V-B).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from .. import nn
from ..formats.base import NumberFormat
from ..formats.bfp import BlockFloatingPoint
from ..formats.registry import make_format
from ..nn.tensor import Tensor
from ..obs.telemetry import get_registry
from ..obs.tracing import get_tracer
from .detector import RangeDetector
from .injection import InjectionEngine, ValueInjection
from .resume import DEFAULT_CACHE_BUDGET, ResumeSession, _BatchedReplay

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.numerics import NumericHealthMonitor
    from ..obs.profiler import LayerProfiler

logger = logging.getLogger("repro.goldeneye")

__all__ = ["GoldenEye", "LayerState", "TARGET_KINDS", "default_target_types"]

#: layer-kind selectors for the ``targets`` knob
TARGET_KINDS: dict[str, tuple[type, ...]] = {
    "conv": (nn.Conv2d,),
    "linear": (nn.Linear,),
    "norm": (nn.BatchNorm2d, nn.LayerNorm),
    "activation": (nn.ReLU, nn.GELU, nn.Sigmoid, nn.Tanh, nn.Softmax),
    "pool": (nn.MaxPool2d, nn.AvgPool2d, nn.AdaptiveAvgPool2d),
    "embedding": (nn.Embedding,),
}


def default_target_types() -> tuple[type, ...]:
    """CONV and LINEAR — the paper's defaults, "due to their computational
    intensity" (§V-B)."""
    return TARGET_KINDS["conv"] + TARGET_KINDS["linear"]


@dataclass
class LayerState:
    """Per-instrumented-layer bookkeeping."""

    name: str
    module: nn.Module
    #: format instance for this layer's output activations (neurons)
    neuron_format: NumberFormat | None
    #: format instance for this layer's weights
    weight_format: NumberFormat | None
    #: pristine FP32 weights, restored at detach
    original_weights: dict[str, np.ndarray] = field(default_factory=dict)
    #: metadata captured when the weights were converted
    weight_golden_metadata: Any = None
    #: metadata captured on the most recent forward (clean, pre-corruption)
    neuron_golden_metadata: Any = None
    #: shape of the most recent output (for sampling injection sites)
    last_output_shape: tuple[int, ...] | None = None
    hook_handle: nn.HookHandle | None = None
    #: profiler timestamp pre-hook (installed only when a profiler is set)
    pre_hook_handle: nn.HookHandle | None = None


def _metadata_snapshot(fmt: NumberFormat) -> Any:
    meta = fmt.metadata
    return meta.copy() if hasattr(meta, "copy") and not np.isscalar(meta) else meta


class GoldenEye:
    """Functional simulator of a number format over a model.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.
    number_format:
        A format spec (``"fp16"``, ``"bfp_e5m5_b16"``, a
        :class:`~repro.formats.NumberFormat` instance), or a mapping of layer
        name to spec for per-layer (mixed) assignment.  Each instrumented
        layer gets its own fresh instance so metadata never aliases.
    targets:
        Iterable of kind selectors from :data:`TARGET_KINDS`, ``"all"``, or an
        explicit list of layer names.  Defaults to CONV + LINEAR.
    quantize_weights / quantize_neurons:
        Convert parameters at attach time / activations per forward pass.
    range_detector:
        Optional :class:`RangeDetector` (the paper's toggleable detector);
        clamps each layer's output to its profiled range *after* injection,
        modelling a low-cost protection mechanism.
    profiler:
        Optional :class:`~repro.obs.profiler.LayerProfiler`.  When set, every
        instrumented forward is split into compute / quantize / inject /
        detect phases with per-layer ns/element and activation-memory
        accounting; when ``None`` (the default) the hook hot path carries a
        single ``is not None`` check and no timing calls.
    numerics:
        Optional :class:`~repro.obs.numerics.NumericHealthMonitor`.  When
        set, :meth:`attach` installs a numeric-health stats sink on every
        layer format (weight *and* neuron streams), recording quantization
        error, saturation/flush/NaN-remap counts and dynamic-range coverage
        per layer; when ``None`` (the default) each tensor conversion pays
        one ``is not None`` check.
    """

    def __init__(
        self,
        model: nn.Module,
        number_format: str | NumberFormat | Mapping[str, str | NumberFormat] = "fp32",
        targets: Iterable[str] | str = ("conv", "linear"),
        quantize_weights: bool = True,
        quantize_neurons: bool = True,
        range_detector: RangeDetector | None = None,
        profiler: "LayerProfiler | None" = None,
        numerics: "NumericHealthMonitor | None" = None,
    ):
        self.model = model
        self.quantize_weights = quantize_weights
        self.quantize_neurons = quantize_neurons
        self.detector = range_detector
        self.profiler = profiler
        self.numerics = numerics
        self.injector = InjectionEngine(self)
        self._attached = False
        self._format_spec = number_format
        self.layers: dict[str, LayerState] = {}
        #: checkpoint-and-resume session (see :meth:`enable_resume`)
        self.resume_session: ResumeSession | None = None
        #: (lanes, per_replica_batch) while a fault-axis batched pass runs
        self._fault_lanes: tuple[int, int] | None = None
        self._build_layer_states(number_format, targets)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _select_modules(self, targets) -> list[tuple[str, nn.Module]]:
        named = [(name, mod) for name, mod in self.model.named_modules() if name]
        leaves = [(n, m) for n, m in named if not any(True for _ in m.children())]
        if isinstance(targets, str):
            targets = (targets,)
        targets = tuple(targets)
        if "all" in targets:
            return leaves
        selected: list[tuple[str, nn.Module]] = []
        kind_types: tuple[type, ...] = ()
        explicit_names = set()
        for t in targets:
            if t in TARGET_KINDS:
                kind_types += TARGET_KINDS[t]
            else:
                explicit_names.add(t)
        known = {n for n, _ in leaves}
        missing = explicit_names - known
        if missing:
            raise KeyError(f"target layer names not found in model: {sorted(missing)}")
        for name, mod in leaves:
            if isinstance(mod, kind_types) or name in explicit_names:
                selected.append((name, mod))
        if not selected:
            raise ValueError(f"no layers matched targets {targets!r}")
        return selected

    def _build_layer_states(self, number_format, targets) -> None:
        modules = self._select_modules(targets)
        per_layer = isinstance(number_format, Mapping)
        for name, module in modules:
            if per_layer:
                spec = number_format.get(name)
                if spec is None:
                    continue  # unassigned layers stay in the fabric format
            else:
                spec = number_format
            self.layers[name] = LayerState(
                name=name,
                module=module,
                neuron_format=make_format(spec) if self.quantize_neurons else None,
                weight_format=make_format(spec) if self.quantize_weights else None,
            )
        if not self.layers:
            raise ValueError("no layers selected for emulation")

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(self) -> "GoldenEye":
        """Instrument the model: convert weights, register neuron hooks."""
        if self._attached:
            return self
        registry = get_registry()
        if self.numerics is not None:
            # before weight conversion, so the attach-time weight
            # quantization is part of the numeric-health record
            self.numerics.attach(self)
        with get_tracer().span("goldeneye.attach", format=self.format_name(),
                               layers=len(self.layers)):
            for state in self.layers.values():
                if state.weight_format is not None:
                    t0 = time.perf_counter()
                    self._convert_weights(state)
                    registry.histogram(
                        "goldeneye.weight_convert_seconds",
                        help="per-layer attach-time weight conversion",
                        layer=state.name).observe(time.perf_counter() - t0)
                if state.neuron_format is not None or self.detector is not None:
                    if self.profiler is not None:
                        state.pre_hook_handle = state.module.register_forward_pre_hook(
                            self.profiler.make_pre_hook())
                    state.hook_handle = state.module.register_forward_hook(
                        self._make_hook(state)
                    )
        registry.counter("goldeneye.attaches_total",
                         help="platform attach() calls").inc()
        logger.debug("attached %d layers under format %r",
                     len(self.layers), self.format_name())
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove hooks and restore the pristine FP32 weights."""
        for state in self.layers.values():
            if state.hook_handle is not None:
                state.hook_handle.remove()
                state.hook_handle = None
            if state.pre_hook_handle is not None:
                state.pre_hook_handle.remove()
                state.pre_hook_handle = None
            for pname, original in state.original_weights.items():
                np.copyto(getattr(state.module, pname).data, original)
            state.original_weights.clear()
            state.weight_golden_metadata = None
        if self.numerics is not None:
            self.numerics.detach(self)
        self._attached = False
        # cached activations were produced under the (now removed) hooks
        self.clear_resume()

    def __enter__(self) -> "GoldenEye":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    @property
    def attached(self) -> bool:
        return self._attached

    def _convert_weights(self, state: LayerState) -> None:
        fmt = state.weight_format
        weight_metadata = None
        for pname, param in state.module._parameters.items():
            if param is None:
                continue
            state.original_weights[pname] = param.data.copy()
            param.data[...] = fmt.real_to_format_tensor(param.data)
            if pname == "weight":
                weight_metadata = _metadata_snapshot(fmt)
        # the main weight tensor's metadata is the injectable register; keep it
        # captured even though other params (bias) were converted afterwards
        if weight_metadata is not None:
            state.weight_golden_metadata = weight_metadata
            fmt.metadata = weight_metadata

    # ------------------------------------------------------------------
    # the per-layer forward hook (§III-A)
    # ------------------------------------------------------------------
    def _make_hook(self, state: LayerState):
        def hook(module: nn.Module, inputs, output: nn.Tensor):
            data = output.data
            if self._fault_lanes is not None:
                return _straight_through(output,
                                         self._lane_postprocess(state, data))
            prof = self.profiler
            if prof is not None:
                # books the `compute` phase (pre-hook stamp -> hook entry)
                t_prev = prof.begin_postprocess(state.name, module, data)
            fmt = state.neuron_format
            if fmt is not None:
                quantized = fmt.real_to_format_tensor(data)
                state.neuron_golden_metadata = _metadata_snapshot(fmt)
            else:
                quantized = data.copy()
            if prof is not None:
                now = time.perf_counter()
                prof.record_phase(state.name, "quantize", now - t_prev,
                                  quantized.size)
                t_prev = now
            state.last_output_shape = quantized.shape
            quantized = self.injector.apply_neuron_injections(state, quantized)
            if prof is not None:
                now = time.perf_counter()
                prof.record_phase(state.name, "inject", now - t_prev,
                                  quantized.size)
                t_prev = now
            if self.detector is not None:
                quantized = self.detector.clamp(state.name, quantized)
                if prof is not None:
                    now = time.perf_counter()
                    prof.record_phase(state.name, "detect", now - t_prev,
                                      quantized.size)
            return _straight_through(output, quantized)

        return hook

    def _lane_postprocess(self, state: LayerState,
                          data: np.ndarray) -> np.ndarray:
        """Quantize + inject a fault-axis batched layer output.

        The tensor stacks ``lanes`` replicas of the evaluation batch along
        axis 0.  Stateless formats quantize elementwise, so the whole stack
        converts in one pass and all lane corruptions land in a single
        :func:`~repro.formats.vectorized.flip_values_batched` call.  Formats
        with tensor-global metadata (scale / bias / block registers) must
        quantize each replica separately — the registers the K=1 pass would
        capture — with that lane's corruption applied while its metadata is
        live.
        """
        lanes, batch = self._fault_lanes
        fmt = state.neuron_format
        if fmt is not None and fmt.has_metadata:
            quantized = np.empty(data.shape, dtype=np.float32)
            for k in range(lanes):
                lane = slice(k * batch, (k + 1) * batch)
                lane_q = fmt.real_to_format_tensor(data[lane])
                state.neuron_golden_metadata = _metadata_snapshot(fmt)
                state.last_output_shape = lane_q.shape
                quantized[lane] = self.injector.apply_lane_injection(
                    state, lane_q, k)
        else:
            if fmt is not None:
                quantized = fmt.real_to_format_tensor(data)
            else:
                quantized = data.copy()
            state.last_output_shape = (batch,) + quantized.shape[1:]
            quantized = self.injector.apply_lane_injections(
                state, quantized, lanes)
        if self.detector is not None:
            quantized = self.detector.clamp(state.name, quantized)
        return quantized

    # ------------------------------------------------------------------
    # checkpoint-and-resume partial execution (see core/resume.py)
    # ------------------------------------------------------------------
    def enable_resume(self, budget_bytes: int | None = DEFAULT_CACHE_BUDGET) -> ResumeSession:
        """Create (or replace) the activation-checkpoint session.

        ``budget_bytes`` caps the activation cache (LRU-evicted beyond it;
        ``None`` = unlimited).  Call :meth:`capture_golden` afterwards to
        record the golden pass, then :meth:`forward_from` per injection.
        """
        self.resume_session = ResumeSession(self.model, budget_bytes)
        return self.resume_session

    def clear_resume(self) -> None:
        """Drop the resume session and release its cached activations."""
        self.resume_session = None

    def capture_golden(self, images: np.ndarray) -> np.ndarray:
        """Run one clean forward pass, recording every leaf output.

        Returns the golden logits.  Requires :meth:`enable_resume` first and
        an attached platform; no injections may be armed (the recording must
        be fault-free to be a valid checkpoint).
        """
        if self.resume_session is None:
            raise RuntimeError("call enable_resume() before capture_golden()")
        if self.injector.active:
            raise RuntimeError("cannot record a golden pass with injections armed")
        self.model.eval()
        with get_tracer().span("goldeneye.capture_golden",
                               batch=int(np.asarray(images).shape[0])):
            with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"):
                with self.resume_session.recording():
                    logits = self.model.forward_from(
                        self.resume_session, Tensor(np.asarray(images, dtype=np.float32)))
        return logits.data.copy()

    def forward_from(self, layer: str, images: np.ndarray) -> np.ndarray:
        """Resume inference from ``layer``, replaying the cached prefix.

        Every leaf module that executed before ``layer``'s first appearance
        in the recorded golden pass returns its cached output; ``layer`` and
        everything downstream re-execute (applying any armed injections).
        Falls back to a full forward pass — still bit-exact — when no valid
        recording exists for this batch.  ``images`` must be the batch given
        to :meth:`capture_golden`.
        """
        state = self.layers.get(layer)
        if state is None:
            raise KeyError(f"layer {layer!r} is not instrumented")
        session = self.resume_session
        start = None
        if session is not None and session.recorded:
            start = session.start_index_for(state.module)
        x = Tensor(np.asarray(images, dtype=np.float32))
        self.model.eval()
        with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"):
            if start is None:
                logits = self.model(x)  # fallback: full forward
            else:
                with session.replaying(start):
                    logits = self.model.forward_from(session, x)
        return logits.data.copy()

    def forward_from_batched(self, layer: str, plans,
                             images: np.ndarray) -> np.ndarray:
        """Evaluate K independent value injections in one forward pass.

        The evaluation batch is tiled K times along axis 0 — one replica
        *lane* per plan — and the suffix below ``layer`` runs once over the
        stack, with plan ``k``'s corruption applied only to lane ``k``
        (every lane's flip lands in a single
        :func:`~repro.formats.vectorized.flip_values_batched` call for
        stateless formats).  When a golden recording exists the cached
        prefix is tiled instead of recomputed.  Returns logits of shape
        ``(K, batch, ...)``: ``out[k]`` is bit-identical to
        ``forward_from(layer, images)`` with ``plans[k]`` armed alone
        (GEMMs are lane-chunked — :mod:`repro.nn.lanes` — so BLAS sees the
        exact K=1 shapes).

        Only same-layer neuron *value* plans batch; metadata and weight
        plans perturb shared state and must go through the per-plan path.
        """
        state = self.layers.get(layer)
        if state is None:
            raise KeyError(f"layer {layer!r} is not instrumented")
        plans = list(plans)
        if not plans:
            raise ValueError("forward_from_batched needs at least one plan")
        for plan in plans:
            if not isinstance(plan, ValueInjection) or plan.location != "neuron":
                raise ValueError(
                    f"only neuron value plans can batch, got {plan!r}")
            if plan.layer != layer:
                raise ValueError(
                    f"plan targets layer {plan.layer!r}, expected {layer!r}")
        images = np.asarray(images, dtype=np.float32)
        lanes, batch = len(plans), images.shape[0]
        session = self.resume_session
        start = None
        if session is not None and session.recorded:
            start = session.start_index_for(state.module)
        tiled = np.tile(images, (lanes,) + (1,) * (images.ndim - 1))
        self.model.eval()
        with self.injector.armed(*plans):
            self._fault_lanes = (lanes, batch)
            try:
                with nn.no_grad(), np.errstate(over="ignore", invalid="ignore"), \
                        nn.lane_scope(lanes):
                    if start is None:
                        logits = self.model(Tensor(tiled))
                    else:
                        replay = _BatchedReplay(session, start, lanes)
                        logits = self.model.forward_from(replay, Tensor(tiled))
            finally:
                self._fault_lanes = None
        out = logits.data.copy()
        return out.reshape((lanes, batch) + out.shape[1:])

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def layer_names(self) -> list[str]:
        return list(self.layers)

    def layer_output_shape(self, name: str) -> tuple[int, ...] | None:
        return self.layers[name].last_output_shape

    def describe(self) -> str:
        """Human-readable instrumentation summary."""
        lines = [f"GoldenEye(format={self._format_spec!r}, "
                 f"weights={self.quantize_weights}, neurons={self.quantize_neurons}, "
                 f"detector={'on' if self.detector else 'off'})"]
        for state in self.layers.values():
            fmt = state.neuron_format or state.weight_format
            lines.append(f"  {state.name}: {type(state.module).__name__} -> {fmt}")
        return "\n".join(lines)

    def spawn_format(self) -> NumberFormat | None:
        """A fresh instance of the (single) configured format, if uniform."""
        if isinstance(self._format_spec, Mapping):
            return None
        return make_format(self._format_spec)

    def format_name(self) -> str:
        """Display name of the configured format (``"mixed"`` if per-layer).

        Unlike :meth:`spawn_format` this never instantiates a throwaway
        format object for uniform configurations already materialised in a
        layer state.
        """
        if isinstance(self._format_spec, Mapping):
            return "mixed"
        if isinstance(self._format_spec, NumberFormat):
            return self._format_spec.name
        for state in self.layers.values():
            fmt = state.neuron_format or state.weight_format
            if fmt is not None:
                return fmt.name
        return make_format(self._format_spec).name


def _straight_through(original: nn.Tensor, quantized_data: np.ndarray) -> nn.Tensor:
    """Wrap quantized data as a Tensor whose gradient bypasses the emulation.

    The straight-through estimator is what makes "number format emulation ...
    supported for training ... as backpropagation is supported" (§V-B).
    """
    out = original._make(quantized_data.astype(np.float32, copy=False), (original,))
    if out.requires_grad:

        def _backward():
            original._accumulate(out.grad)

        out._backward = _backward
    return out
