"""The single-bit injection-site catalogue (paper §I, §III-B).

The paper studies "a total of 8 different single-bit injection error sites
informed by the number format representations": data-value bit flips for all
five number formats, plus hardware-metadata flips for the three formats that
keep shared state (INT's scale factor, BFP's shared exponents, AFP's exponent
bias).  This module names those sites, documents what a flipped bit means in
each, and maps a site to the format spec + injection kind the campaign runner
needs.

Beyond the paper's single-bit model, every *value* site also accepts the
richer fault models of :mod:`repro.core.faultmodels` (burst, stuck-at,
exhaustive, temporal) — the bit pattern changes, the site does not.
Metadata sites remain single-bit-only: a metadata register flip is already
a multi-value event, and the fault-model axis is defined over value words
(:meth:`InjectionSite.fault_models` reports what each site supports).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats.base import NumberFormat
from ..formats.registry import make_format

__all__ = ["InjectionSite", "INJECTION_SITES", "injection_sites", "site_by_name"]

#: fault-model specs every value site accepts (metadata sites: single only)
_VALUE_FAULT_MODELS = ("single", "burst2", "burst4", "stuck0", "stuck1",
                       "exhaustive", "temporalN")


@dataclass(frozen=True)
class InjectionSite:
    """One of the catalogue's injection sites."""

    #: unique site name, e.g. ``"bfp-metadata"``
    name: str
    #: a representative format spec for the site
    format_spec: str
    #: ``"value"`` or ``"metadata"``
    kind: str
    #: what a single flipped bit physically corrupts
    description: str

    def make_format(self) -> NumberFormat:
        return make_format(self.format_spec)

    def fault_models(self) -> tuple[str, ...]:
        """Fault-model specs applicable at this site."""
        return _VALUE_FAULT_MODELS if self.kind == "value" else ("single",)

    def supports_fault_model(self, spec) -> bool:
        """True when ``spec`` (a string or FaultModel) applies at this site."""
        from .faultmodels import parse_fault_model
        model = parse_fault_model(spec)
        return self.kind == "value" or model.spec() == "single"


INJECTION_SITES: tuple[InjectionSite, ...] = (
    InjectionSite(
        "fp-value", "fp32", "value",
        "one bit of an IEEE-754-style value: sign, exponent, or mantissa "
        "(the classic software single-bit-flip model)",
    ),
    InjectionSite(
        "fxp-value", "fxp_1_15_16", "value",
        "one bit of a two's-complement fixed-point value",
    ),
    InjectionSite(
        "int-value", "int8", "value",
        "one bit of a signed integer code (the dequantized error scales with "
        "the tensor's scale factor)",
    ),
    InjectionSite(
        "bfp-value", "bfp_e5m5_b16", "value",
        "one bit of a BFP element (sign or mantissa only — the exponent is "
        "shared, so the per-value word is short and its sign bit weighs more)",
    ),
    InjectionSite(
        "afp-value", "afp_e5m2", "value",
        "one bit of an AdaptivFloat value (sign, exponent, or mantissa under "
        "the tensor's shared bias)",
    ),
    InjectionSite(
        "int-metadata", "int8", "metadata",
        "one bit of the FP32 scale-factor register: every value dequantized "
        "through it shifts together",
    ),
    InjectionSite(
        "bfp-metadata", "bfp_e5m5_b16", "metadata",
        "one bit of a shared-exponent register: the whole block rescales by a "
        "power of two — a single hardware flip behaving as a multi-bit flip",
    ),
    InjectionSite(
        "afp-metadata", "afp_e5m2", "metadata",
        "one bit of the shared exponent-bias register: the whole tensor "
        "rescales by a power of two",
    ),
)


def injection_sites(kind: str | None = None) -> tuple[InjectionSite, ...]:
    """All sites, optionally filtered to ``"value"`` or ``"metadata"``."""
    if kind is None:
        return INJECTION_SITES
    if kind not in ("value", "metadata"):
        raise ValueError(f"kind must be 'value' or 'metadata', got {kind!r}")
    return tuple(s for s in INJECTION_SITES if s.kind == kind)


def site_by_name(name: str) -> InjectionSite:
    """Look up one catalogue site by its unique name."""
    for site in INJECTION_SITES:
        if site.name == name:
            return site
    raise KeyError(f"unknown injection site {name!r}; "
                   f"known: {', '.join(s.name for s in INJECTION_SITES)}")
