"""``repro.exec`` — the crash-safe parallel campaign executor.

GoldenEye's headline experiments are large fault-injection campaigns
("1000 unique single-bit flip injections for each of data and metadata at a
layer granularity", §IV-C); this package makes them survivable and parallel:

* :mod:`repro.exec.journal` — write-ahead JSONL journal.  Every completed
  injection record is flushed *before* aggregation, so a crashed / OOM-killed
  / Ctrl-C'd campaign resumes by skipping journaled work and reproduces the
  identical aggregate (torn tail lines from a mid-write kill are tolerated).
* :mod:`repro.exec.shard` — the shard protocol: a campaign is split into
  per-layer / per-chunk work units referencing the deterministically sampled
  plan sequence by ``(layer, seq)``.
* :mod:`repro.exec.worker` — the fork-based worker loop: adopts the parent's
  activation cache (the shared-memory copy when one was published), pins its
  BLAS/OpenMP thread budget, streams completed injections in batched record
  frames (doubling as heartbeats), and reports failures instead of dying
  silently.
* :mod:`repro.exec.shmcache` — read-only shared-memory publication of the
  golden activation cache: the parent computes the golden prefix once and
  every worker maps the same physical pages (refcounted, unlink-on-last-close,
  force-unlinked at supervisor shutdown so ``/dev/shm`` never leaks).
* :mod:`repro.exec.supervisor` — the supervisor: dispatches shards to a
  worker pool, enforces per-shard timeouts, retries failed shards with
  exponential backoff, **quarantines** poison shards after the retry budget,
  detects dead workers (reassigning their orphaned shards to survivors and
  respawning replacements), and shuts down cleanly on SIGINT/SIGTERM with a
  flushed journal and a partial, resumable result.

Because plan sampling is decoupled from execution and aggregation folds
records in plan order (see :mod:`repro.core.campaign`), parallel campaigns
are **bit-identical** to serial ones — the acceptance bar this package is
tested against.
"""

from .journal import CampaignJournal, JournalMismatch, campaign_fingerprint
from .shard import Shard, plan_shards
from .shmcache import SharedCacheError, SharedGoldenCache, live_segments
from .supervisor import CampaignSupervisor, ExecConfig, ParallelOutcome, \
    WorkerPool, run_parallel_campaign

__all__ = [
    "CampaignJournal",
    "JournalMismatch",
    "campaign_fingerprint",
    "Shard",
    "plan_shards",
    "SharedCacheError",
    "SharedGoldenCache",
    "live_segments",
    "ExecConfig",
    "ParallelOutcome",
    "CampaignSupervisor",
    "WorkerPool",
    "run_parallel_campaign",
]
