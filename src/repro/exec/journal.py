"""Write-ahead JSONL journal for injection campaigns.

The journal is the campaign's durability layer: every completed injection
record is appended (and flushed) *before* it reaches aggregation, so any
process death — crash, OOM kill, SIGKILL, Ctrl-C — loses at most the
injections that were still in flight.  Re-running ``run_campaign`` with the
same arguments and the same journal path skips every journaled record and
reproduces the identical aggregate, because aggregation folds records in
plan (``seq``) order regardless of where they came from.

File format (one JSON object per line)::

    {"type": "header", "version": 1, "fingerprint": {...}, "created": ...}
    {"type": "injection", "layer": "conv1", "seq": 0, "site": 17,
     "bits": [3], "delta_loss": 0.25, "mismatch_rate": 0.0,
     "sdc_rate": 0.0, "dur_s": 0.004}
    {"type": "batch", "n": 2, "records": [{"layer": "conv1", "seq": 1, ...},
     {"layer": "conv1", "seq": 2, ...}]}
    {"type": "quarantine", "shard_id": 4, "layer": "fc",
     "seqs": [8, 9], "attempts": 3, "reason": "timeout"}
    ...

``injection`` lines carry one record each (the serial executor's
flush-per-record framing); ``batch`` lines carry a whole worker batch in
one line with **one** write + flush (the parallel executor's framing —
see :meth:`CampaignJournal.append_batch`).  Loading treats them
identically: records fold into the same last-wins ``(layer, seq)`` map in
file order, so dedup holds across batch boundaries and across mixed
serial/parallel appends to one journal.

Properties:

* **Fingerprinted.**  The header pins the campaign identity (kind, location,
  format, seed, plan budget, bit count, target layers, and a digest of the
  evaluation batch).  Opening a journal written by a *different* campaign
  raises :class:`JournalMismatch` instead of silently mixing results.
* **Torn-tail tolerant.**  A process killed mid-``write`` leaves a partial
  final line; loading skips unparseable lines (counting them) rather than
  failing, so a journal is always resumable after a hard kill.  A torn
  **batch** line loses only that batch — every earlier (flushed) line is
  intact, and a resumed run simply re-executes the lost records.
* **Append-only / last-wins.**  Resumed runs append to the same file; if a
  ``(layer, seq)`` pair somehow appears twice (e.g. a retried shard raced a
  dying worker), the last record wins.
* **Exact floats.**  Records round-trip through ``repr``-based JSON floats,
  which is lossless for IEEE-754 doubles — journal-resumed aggregates are
  bit-identical, not merely close.
* **Quarantine events are advisory.**  They document abandoned shards for
  post-mortems; a resumed run re-attempts those seqs (the fault may have
  been transient).

Durability note: ``flush()`` per record survives *process* death (the data
lives in the OS page cache); pass ``fsync_every`` to also survive machine
crashes at a substantial throughput cost.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

__all__ = ["CampaignJournal", "JournalMismatch", "campaign_fingerprint",
           "load_journal", "KNOWN_RECORD_KINDS"]

JOURNAL_VERSION = 1


class JournalMismatch(ValueError):
    """The journal on disk was written by a different campaign."""


def _data_digest(images, labels) -> str:
    """Short content digest of the evaluation batch (shape + bytes)."""
    h = hashlib.sha256()
    arr = np.ascontiguousarray(np.asarray(images, dtype=np.float32))
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    lab = np.ascontiguousarray(np.asarray(labels))
    h.update(str(lab.shape).encode())
    h.update(lab.tobytes())
    return h.hexdigest()[:16]


def campaign_fingerprint(
    kind: str,
    location: str,
    format_name: str,
    seed: int,
    injections_per_layer: int,
    num_bits: int,
    layers: list[str],
    images=None,
    labels=None,
    fault=None,
    protect=None,
) -> dict:
    """The identity of a campaign for journal-compatibility checks.

    ``fault`` (fault-model spec) and ``protect`` (protection spec)
    participate *only* when non-default: a default single-bit unprotected
    campaign keeps its historical fingerprint, so journals written before
    fault models existed stay resumable — while resuming one under a
    different model/protection raises :class:`JournalMismatch`.
    """
    fp = {
        "kind": kind,
        "location": location,
        "format": format_name,
        "seed": int(seed),
        "injections_per_layer": int(injections_per_layer),
        "num_bits": int(num_bits),
        "layers": list(layers),
    }
    if fault is not None and str(fault) != "single":
        fp["fault"] = str(fault)
    if protect is not None and str(protect) != "none":
        fp["protect"] = str(protect)
    if images is not None and labels is not None:
        fp["data"] = _data_digest(images, labels)
    return fp


#: record ``kind`` values this version of the loader understands
KNOWN_RECORD_KINDS = ("value", "metadata")

#: fault-model specs this loader understands (prefix match for the
#: parameterised families)
_KNOWN_FAULT_PREFIXES = ("single", "burst", "stuck", "exhaustive", "temporal")


def _record_is_known(entry: dict) -> bool:
    """False when a record comes from a future schema this loader can't fold.

    Forward compatibility: a journal written by a newer version may carry
    record ``kind``s or ``fault`` models this code predates.  Such records
    are *skipped with a count* — never misfolded into the statistics of a
    plan they don't describe.
    """
    kind = entry.get("kind")
    if kind is not None and kind not in KNOWN_RECORD_KINDS:
        return False
    fault = entry.get("fault")
    if fault is not None and not any(
            str(fault).startswith(p) for p in _KNOWN_FAULT_PREFIXES):
        return False
    return True


def load_journal(path) -> tuple[dict | None, dict[tuple[str, int], dict],
                                int, int]:
    """Read a journal file, tolerating a torn tail line.

    Returns ``(header, records, corrupt_lines, skipped_unknown)`` where
    ``records`` maps ``(layer, seq)`` to the last journaled record for that
    plan and ``skipped_unknown`` counts well-formed records whose ``kind``
    or ``fault`` field this loader does not understand (written by a newer
    version — skipped, with a warning, rather than misinterpreted).
    """
    header: dict | None = None
    records: dict[tuple[str, int], dict] = {}
    corrupt = 0
    skipped_unknown = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1  # torn write from a mid-append kill
                continue
            if not isinstance(entry, dict):
                corrupt += 1
                continue
            etype = entry.get("type")
            if etype == "header" and header is None:
                header = entry
            elif etype == "injection":
                if not _record_is_known(entry):
                    skipped_unknown += 1
                elif not _fold_record(records, entry):
                    corrupt += 1
            elif etype == "batch":
                batched = entry.get("records")
                if not isinstance(batched, list):
                    corrupt += 1
                    continue
                for rec in batched:
                    if not isinstance(rec, dict):
                        corrupt += 1
                    elif not _record_is_known(rec):
                        skipped_unknown += 1
                    elif not _fold_record(records, rec):
                        corrupt += 1
            # quarantine (and unknown future) entries are advisory: skipped
    if skipped_unknown:
        import logging
        logging.getLogger("repro.exec").warning(
            "journal %s: skipped %d record(s) with an unknown kind/fault "
            "(written by a newer version?)", path, skipped_unknown)
    return header, records, corrupt, skipped_unknown


def _fold_record(records: dict, entry: dict) -> bool:
    """Fold one injection record into the last-wins map; False if malformed."""
    try:
        key = (str(entry["layer"]), int(entry["seq"]))
    except (KeyError, TypeError, ValueError):
        return False
    records[key] = entry
    return True


class CampaignJournal:
    """Append-only write-ahead journal bound to one campaign fingerprint."""

    def __init__(self, path, fingerprint: dict, _fh=None,
                 fsync_every: bool = False):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.fsync_every = fsync_every
        self._fh = _fh
        self.records_written = 0
        self.batches_written = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path, fingerprint: dict, fsync_every: bool = False
             ) -> tuple["CampaignJournal", dict[tuple[str, int], dict]]:
        """Open (creating or resuming) the journal at ``path``.

        Returns the journal plus the records already completed by previous
        runs.  A fresh file gets a header; an existing file must carry a
        matching fingerprint (:class:`JournalMismatch` otherwise).
        """
        path = Path(path)
        completed: dict[tuple[str, int], dict] = {}
        if path.exists() and path.stat().st_size > 0:
            header, completed, corrupt, _skipped = load_journal(path)
            if header is None:
                if completed:
                    raise JournalMismatch(
                        f"journal {path} has injection records but no "
                        "readable header; refusing to resume from it")
                # nothing salvageable (e.g. a single torn header line):
                # start over
                path.unlink()
            else:
                recorded = header.get("fingerprint")
                if recorded != fingerprint:
                    raise JournalMismatch(
                        f"journal {path} was written by a different campaign:\n"
                        f"  journal:  {recorded}\n"
                        f"  current:  {fingerprint}\n"
                        "pass a fresh --journal path (or delete the old file) "
                        "to start over")
                if corrupt:
                    import logging
                    logging.getLogger("repro.exec").warning(
                        "journal %s: skipped %d torn/corrupt line(s)",
                        path, corrupt)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fingerprint, _fh=fh, fsync_every=fsync_every)
        if fresh:
            journal._append({"type": "header", "version": JOURNAL_VERSION,
                             "fingerprint": fingerprint,
                             "created": time.time()})
        return journal, completed

    # ------------------------------------------------------------------
    def _append(self, entry: dict) -> None:
        if self._fh is None:
            raise RuntimeError("journal is closed")
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()  # survives process death (OS page cache)
        if self.fsync_every:
            os.fsync(self._fh.fileno())

    def append_record(self, record: dict) -> None:
        """Journal one completed injection (write-ahead of aggregation)."""
        entry = dict(record)
        entry["type"] = "injection"
        self._append(entry)
        self.records_written += 1

    def append_batch(self, records) -> None:
        """Journal a worker batch as one framed line with one flush.

        This is the parallel executor's write path: instead of one
        write+flush syscall pair per record, a whole batch costs one line.
        Durability granularity becomes the batch — a kill mid-write tears
        at most this one line (the loader skips it and a resumed run
        re-executes those records), while every previously flushed line is
        untouched.  Empty batches are a no-op.
        """
        records = list(records)
        if not records:
            return
        if len(records) == 1:
            self.append_record(records[0])
            return
        self._append({"type": "batch", "n": len(records),
                      "records": records})
        self.records_written += len(records)
        self.batches_written += 1

    def append_quarantine(self, info: dict) -> None:
        """Journal an abandoned shard (advisory; resumed runs re-attempt)."""
        entry = dict(info)
        entry["type"] = "quarantine"
        self._append(entry)

    def flush(self, fsync: bool = True) -> None:
        if self._fh is not None:
            self._fh.flush()
            if fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self.flush(fsync=True)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
