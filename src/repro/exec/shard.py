"""The shard protocol: campaigns as reassignable units of work.

A campaign's plans are sampled deterministically up front
(:func:`repro.core.campaign.sample_layer_plans`), so the executable work is
fully described by ``(layer, seq)`` pairs into each layer's plan list.  A
:class:`Shard` is a chunk of those pairs for one layer — small enough that
a timeout or crash forfeits little work, large enough that dispatch
overhead stays negligible.

Shards are frozen, picklable and carry *explicit* seq tuples (rather than
ranges) so that partially completed shards can be reissued covering only
the outstanding seqs — the supervisor shrinks a shard every time a record
for it arrives, and a retry after a worker death re-executes only what the
dead worker had not already streamed back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["Shard", "plan_shards", "default_chunk_size"]


@dataclass(frozen=True)
class Shard:
    """One unit of dispatchable campaign work: some seqs of one layer."""

    shard_id: int
    layer: str
    seqs: tuple[int, ...]

    def without(self, done: set[int]) -> "Shard":
        """A copy of this shard covering only the seqs not in ``done``."""
        return replace(self, seqs=tuple(s for s in self.seqs if s not in done))

    def summary(self) -> dict:
        """Flat span/trace attributes describing this shard."""
        return {"shard_id": self.shard_id, "layer": self.layer,
                "seqs": len(self.seqs)}

    def __len__(self) -> int:
        return len(self.seqs)


def default_chunk_size(total_plans: int, workers: int) -> int:
    """Heuristic shard size: ~4 shards per worker, at least 1 plan each.

    Over-decomposing (several shards per worker) keeps the pool busy when
    layers finish unevenly and bounds the work forfeited by one timeout,
    while capping supervisor traffic at a few dozen dispatches.
    """
    if total_plans <= 0:
        return 1
    return max(1, math.ceil(total_plans / max(1, workers * 4)))


def plan_shards(
    layer_plans: dict,
    completed: set[tuple[str, int]] | None = None,
    chunk_size: int | None = None,
    workers: int = 2,
    layer_order: list[str] | None = None,
) -> list[Shard]:
    """Split the outstanding work of ``layer_plans`` into shards.

    ``layer_plans`` maps layer name to
    :class:`~repro.core.campaign.LayerPlan`; ``completed`` holds the
    ``(layer, seq)`` pairs already satisfied (e.g. from a write-ahead
    journal) and is excluded.  Shards are emitted in deterministic
    ``(layer_order, seq)`` order with contiguous ids — the supervisor may
    then execute them in any order without affecting the aggregate.
    """
    completed = completed or set()
    order = layer_order if layer_order is not None else list(layer_plans)
    total = sum(len(layer_plans[name].plans) for name in order)
    size = chunk_size if chunk_size is not None else \
        default_chunk_size(total, workers)
    shards: list[Shard] = []
    for name in order:
        plan = layer_plans[name]
        pending = [seq for seq in range(len(plan.plans))
                   if (name, seq) not in completed]
        for i in range(0, len(pending), size):
            shards.append(Shard(shard_id=len(shards), layer=name,
                                seqs=tuple(pending[i:i + size])))
    return shards
