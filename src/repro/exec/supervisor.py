"""The campaign supervisor: a fault-tolerant parallel shard executor.

The supervisor owns the robustness guarantees of ``run_campaign(...,
workers=N)``:

* **Sharded parallelism** — the deterministically pre-sampled plans are
  split into per-layer chunks (:mod:`repro.exec.shard`) and executed on a
  pool of forked workers; because aggregation folds records in plan order,
  the parallel aggregate is bit-identical to the serial one.
* **Write-ahead journaling** — every record batch streamed back by a
  worker is appended (and flushed) to the journal *before* any of its
  records can reach aggregation, so no accepted injection is ever lost to
  a crash.  Records travel in batches of ``ExecConfig.batch_records``
  (flushed early on shard boundaries) and are journaled one framed line
  per batch — see :meth:`repro.exec.journal.CampaignJournal.append_batch`.
* **Shared golden cache** — when resume is enabled the golden activation
  prefix is computed once in the parent and published read-only to the
  whole pool via :mod:`repro.exec.shmcache`; the segment is refcounted
  and force-unlinked at shutdown (``exec.shm_publish_total``,
  ``exec.shm_adopt_total``, ``exec.shm_unlink_total``, ``exec.shm_bytes``).
* **Per-worker BLAS pinning** — each worker pins its BLAS/OpenMP budget
  to ``cores // workers`` (floor 1) at fork time so an N-worker pool
  cannot oversubscribe the host into anti-scaling.
* **Timeout → retry → quarantine** — a shard attempt that exceeds
  ``shard_timeout`` gets its worker killed (and replaced); the shard is
  retried with exponential backoff up to ``max_retries`` times and then
  **quarantined**: recorded in the result, the campaign degrades
  gracefully instead of hanging or dying.
* **Worker supervision** — shards are *assigned* supervisor-side to
  specific workers over per-worker task queues, so the worker→shard
  association never depends on a message from a worker that may already
  be dead (a worker killed by ``os._exit``/OOM can lose its outbound
  queue-feeder thread along with any un-flushed messages).  A dead worker
  is detected via its exit code; its orphaned shard is shrunk to the seqs
  it had not yet streamed back and reassigned to the surviving pool, and
  a replacement worker is spawned to keep the pool at strength.
* **Signal-safe shutdown** — SIGINT/SIGTERM set a stop flag; the
  supervisor flushes + fsyncs the journal, terminates the pool and
  returns a partial result marked ``interrupted`` that a later run can
  resume from.

Supervision telemetry is parent-side: ``exec.shards_total``,
``exec.shard_retries_total``, ``exec.shard_timeouts_total``,
``exec.shards_quarantined_total``, ``exec.worker_deaths_total``,
``exec.heartbeats_total``, the ``exec.workers`` gauge and the
``exec.shard_seconds`` histogram, plus one ``exec.shard`` trace event per
settled shard and one ``exec.quarantine`` event per abandoned one.
Worker-side observability is **streamed, not lost**: each shard attempt
sends a ``telemetry`` message carrying its metric
:meth:`~repro.obs.telemetry.RunScope` delta and buffered trace events,
which :meth:`CampaignSupervisor._merge_worker_telemetry` folds into the
parent registry/tracer with ``worker_id`` tags
(``exec.telemetry_merges_total`` counts the merges) — so a parallel
campaign's registry and JSONL trace match a serial run's.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as _queue
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs.telemetry import get_registry, merge_metric_delta
from ..obs.tracing import current_span_id, get_tracer
from .shard import Shard, plan_shards
from .shmcache import SharedCacheError, SharedGoldenCache
from .worker import WorkerPayload, worker_main

__all__ = ["ExecConfig", "ParallelOutcome", "CampaignSupervisor",
           "WorkerPool", "run_parallel_campaign"]

logger = logging.getLogger("repro.exec")


@dataclass
class ExecConfig:
    """Tuning knobs (and test hooks) for the parallel executor."""

    #: worker-pool size; values < 2 fall back to the serial path
    workers: int = 2
    #: wall-clock budget for one shard attempt (None = unbounded)
    shard_timeout: float | None = None
    #: re-dispatches allowed after a shard's first failed attempt
    max_retries: int = 2
    #: exponential-backoff base delay between retries (seconds)
    backoff_base: float = 0.25
    #: backoff ceiling (seconds)
    backoff_cap: float = 4.0
    #: plans per shard (None = ~4 shards per worker, see shard.py)
    chunk_size: int | None = None
    #: records per worker result-queue message; batches are flushed early
    #: on shard boundaries and before error reports (see exec/worker.py)
    batch_records: int = 32
    #: publish the golden activation cache read-only to shared memory so
    #: the pool replays one physical copy instead of N copy-on-write ones
    shared_cache: bool = True
    #: BLAS/OMP threads per worker (None = cores // workers, floor 1),
    #: pinned at fork time to prevent pool-wide oversubscription
    blas_threads: int | None = None
    #: emulated per-injection device latency in seconds, honoured
    #: identically by the serial and parallel paths (bench/test knob; the
    #: executor-scaling bench uses it to measure orchestration overhead
    #: independently of host core count)
    injection_latency: float = 0.0
    #: independent faults evaluated per forward pass (fault-axis batching);
    #: 1 = the classic one-injection-per-forward loop.  Per-plan records,
    #: seq ordering, journal framing and telemetry stay bit-identical to
    #: K=1 — only wall-clock changes (see core/campaign.py
    #: ``execute_injection_batch``)
    fault_batch: int = 1
    #: result-queue poll granularity (also bounds signal-response latency)
    poll_interval: float = 0.05
    #: grace period for workers to drain the sentinel at clean shutdown
    shutdown_grace: float = 10.0
    #: install SIGINT/SIGTERM handlers for the duration of the run
    #: (skipped automatically off the main thread)
    install_signal_handlers: bool = True
    #: test hook, runs **in the worker** before each shard attempt:
    #: ``worker_fault(worker_id, shard, attempt)`` — hang/crash/raise here
    #: to exercise timeouts, retries, quarantine and death supervision
    worker_fault: Callable | None = None
    #: test hook, runs **in the parent** after each accepted record:
    #: ``on_record(total_records)`` — e.g. deliver a signal mid-campaign
    on_record: Callable | None = None


@dataclass
class ParallelOutcome:
    """What the supervisor hands back to ``run_campaign``."""

    records: dict  # (layer, seq) -> record
    quarantined: list[dict] = field(default_factory=list)
    interrupted: bool = False
    worker_resume_stats: list[dict] = field(default_factory=list)
    shards_total: int = 0
    shard_retries: int = 0
    worker_deaths: int = 0


@dataclass
class _ShardState:
    shard: Shard
    pending: set[int]
    attempts: int = 0
    status: str = "queued"  # queued | inflight | deferred | done | quarantined
    last_error: str = ""


class WorkerPool:
    """The persistent fork pool behind one campaign.

    Spawned once, before the first shard is dispatched, and kept alive
    across every layer, shard and retry of the campaign — respawning per
    shard (or per layer) would re-pay fork plus cache adoption on every
    dispatch.  Membership changes only when the supervisor kills a
    timed-out worker or replaces a dead one; the replacement forks from
    the same payload and rejoins the same queues.
    """

    def __init__(self, ctx, payload: WorkerPayload, result_queue, registry):
        self._ctx = ctx
        self.payload = payload
        self._result_queue = result_queue
        self._registry = registry
        self.processes: dict[int, multiprocessing.Process] = {}
        #: per-worker task queues: assignment is supervisor-side so the
        #: worker -> shard mapping survives a worker that dies silently
        self.task_queues: dict[int, object] = {}
        self.worker_shard: dict[int, int | None] = {}
        self.idle: set[int] = set()
        self.last_seen: dict[int, float] = {}
        self.clean_exits: set[int] = set()
        self._next_worker_id = 0

    def __len__(self) -> int:
        return len(self.processes)

    def spawn(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.payload, task_queue, self._result_queue),
            daemon=True, name=f"repro-exec-worker-{worker_id}")
        process.start()
        self.processes[worker_id] = process
        self.task_queues[worker_id] = task_queue
        self.worker_shard[worker_id] = None
        self.idle.add(worker_id)
        self.last_seen[worker_id] = time.monotonic()
        self._registry.gauge("exec.workers",
                             help="live campaign workers"
                             ).set(float(len(self.processes)))
        return worker_id

    def send(self, worker_id: int, task) -> None:
        self.task_queues[worker_id].put(task)

    def release(self, worker_id: int, shard_id: int | None) -> None:
        """Mark a live worker idle again after it reported done/error."""
        if worker_id not in self.processes:
            return  # already killed / reaped
        if shard_id is None or self.worker_shard.get(worker_id) == shard_id:
            self.worker_shard[worker_id] = None
            self.idle.add(worker_id)

    def kill(self, worker_id: int) -> None:
        process = self.processes.pop(worker_id, None)
        self.worker_shard.pop(worker_id, None)
        self.idle.discard(worker_id)
        task_queue = self.task_queues.pop(worker_id, None)
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(timeout=2.0)
        if task_queue is not None:
            try:
                task_queue.close()
                task_queue.join_thread()
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        self._registry.gauge("exec.workers").set(float(len(self.processes)))

    def close(self) -> None:
        for worker_id in list(self.processes):
            self.kill(worker_id)


class CampaignSupervisor:
    """Drives one parallel campaign over a pool of forked workers."""

    def __init__(self, payload: WorkerPayload, shards: list[Shard],
                 config: ExecConfig, journal=None,
                 kind: str = "value", location: str = "neuron",
                 progress=None):
        self.payload = payload
        self.config = config
        self.journal = journal
        self.kind = kind
        self.location = location
        #: optional live CampaignProgress tracker (repro.obs.live): fed per
        #: accepted record and per worker message so /progress and /healthz
        #: report parallel runs identically to serial ones
        self.progress = progress
        self.records: dict[tuple[str, int], dict] = {}
        self.quarantined: list[dict] = []
        self.worker_resume_stats: list[dict] = []
        self.shard_retries = 0
        self.worker_deaths = 0
        self._states = {s.shard_id: _ShardState(shard=s, pending=set(s.seqs))
                        for s in shards}
        #: shard_id -> (worker_id, deadline | None, attempt)
        self._inflight: dict[int, tuple[int, float | None, int]] = {}
        #: shard ids awaiting an idle worker (FIFO, deterministic)
        self._backlog: list[int] = []
        #: retry-delayed shards: (due_monotonic, shard_id)
        self._deferred: list[tuple[float, int]] = []
        self._shard_started: dict[int, float] = {}
        self._stop = False
        self._stop_reason = ""
        self._ctx = multiprocessing.get_context("fork")
        self._result_queue = self._ctx.Queue()
        self._registry = get_registry()
        self._tracer = get_tracer()
        self._pool = WorkerPool(self._ctx, payload, self._result_queue,
                                self._registry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> ParallelOutcome:
        registry = self._registry
        total_shards = len(self._states)
        registry.counter("exec.shards_total",
                         help="shards planned for parallel campaigns"
                         ).inc(total_shards)
        if total_shards == 0:
            return self._outcome()
        pool_size = min(self.config.workers, total_shards)
        previous_handlers = self._install_signal_handlers()
        try:
            # the pool is spawned exactly once and persists for the whole
            # campaign — every layer's shards reuse the same processes
            for _ in range(pool_size):
                self._pool.spawn()
            for shard_id in sorted(self._states):
                self._dispatch(self._states[shard_id])
            self._supervise()
            self._shutdown()
        finally:
            self._restore_signal_handlers(previous_handlers)
            self._reap()
            registry.gauge("exec.workers",
                           help="live campaign workers").set(0)
        return self._outcome()

    def _outcome(self) -> ParallelOutcome:
        return ParallelOutcome(
            records=self.records,
            quarantined=self.quarantined,
            interrupted=self._stop,
            worker_resume_stats=self.worker_resume_stats,
            shards_total=len(self._states),
            shard_retries=self.shard_retries,
            worker_deaths=self.worker_deaths,
        )

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _install_signal_handlers(self):
        if not self.config.install_signal_handlers:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None  # signal API is main-thread only
        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, self._handle_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        if not previous:
            return
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _handle_signal(self, signum, frame) -> None:
        self.request_stop(f"signal {signal.Signals(signum).name}")

    def request_stop(self, reason: str) -> None:
        """Stop the campaign at the next loop turn (signal-handler safe)."""
        self._stop = True
        self._stop_reason = reason

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop and self._unsettled():
            now = time.monotonic()
            self._promote_deferred(now)
            try:
                message = self._result_queue.get(
                    timeout=self.config.poll_interval)
            except _queue.Empty:
                message = None
            if message is not None:
                self._handle_message(message)
            now = time.monotonic()
            self._check_timeouts(now)
            self._check_worker_deaths()
            self._pump()
        if self._stop:
            logger.warning("campaign executor stopping early: %s "
                           "(journal flushed; result is partial but "
                           "resumable)", self._stop_reason)

    def _unsettled(self) -> bool:
        return any(s.status not in ("done", "quarantined")
                   for s in self._states.values())

    def _handle_message(self, message) -> None:
        mtype, worker_id, body, _ts = message
        self._pool.last_seen[worker_id] = time.monotonic()
        self._registry.counter(
            "exec.heartbeats_total",
            help="worker liveness messages observed by the supervisor").inc()
        if self.progress is not None:
            self.progress.heartbeat(worker_id)
        if mtype == "records":
            shard_id, _attempt, records = body
            self._accept_records(shard_id, records)
        elif mtype == "record":
            # legacy single-record framing (pre-batching workers)
            shard_id, _attempt, record = body
            self._accept_records(shard_id, (record,))
        elif mtype == "ready":
            if isinstance(body, dict) and body.get("shm_adopted"):
                self._registry.counter(
                    "exec.shm_adopt_total",
                    help="workers that adopted the shared golden cache").inc()
        elif mtype == "start":
            shard_id, attempt = body
            entry = self._inflight.get(shard_id)
            if entry is not None and entry[0] == worker_id \
                    and entry[2] == attempt:
                # re-arm the deadline now that queue wait is over
                self._shard_started[shard_id] = time.monotonic()
                if self.config.shard_timeout is not None:
                    deadline = time.monotonic() + self.config.shard_timeout
                    self._inflight[shard_id] = (worker_id, deadline, attempt)
        elif mtype == "done":
            shard_id, attempt = body
            self._finish_shard(shard_id, attempt, worker_id)
        elif mtype == "error":
            shard_id, attempt, error = body
            self._release_worker(worker_id, shard_id)
            entry = self._inflight.get(shard_id)
            if entry is not None and entry[2] == attempt:
                self._inflight.pop(shard_id, None)
                self._fail_shard(shard_id, f"worker error: {error}")
        elif mtype == "telemetry":
            self._merge_worker_telemetry(worker_id, body)
        elif mtype == "exit":
            self._pool.clean_exits.add(worker_id)
            if body:
                self.worker_resume_stats.append(dict(body))

    def _merge_worker_telemetry(self, worker_id: int, body: dict) -> None:
        """Adopt one shard attempt's observability payload.

        Metric deltas fold into the parent registry (counters add,
        histograms merge bucket-wise, worker gauges get a ``worker`` label
        so they never clobber parent state); buffered trace events are
        replayed into the parent sink tagged with the producing worker —
        the merged JSONL trace of a parallel campaign therefore carries the
        same worker-side events a serial run would have written directly.
        """
        metrics = body.get("metrics")
        if metrics:
            merge_metric_delta(metrics, self._registry, worker=worker_id)
        events = body.get("events") or ()
        if events and self._tracer.enabled:
            for event in events:
                tagged = dict(event)
                tagged["worker_id"] = worker_id
                self._tracer.emit_foreign(tagged)
        self._registry.counter(
            "exec.telemetry_merges_total",
            help="worker shard-attempt telemetry payloads merged").inc()

    def _accept_records(self, shard_id: int, records) -> None:
        """Fold one worker batch: journal once, then aggregate.

        The whole batch (minus records already held, e.g. stragglers from
        a killed attempt that raced its retry) is journaled as a single
        framed line with one flush *before* any record reaches aggregation
        — the write-ahead invariant is preserved at batch granularity.
        """
        from ..core.campaign import emit_injection_telemetry
        fresh = [record for record in records
                 if (record["layer"], record["seq"]) not in self.records]
        if fresh and self.journal is not None:
            self.journal.append_batch(fresh)
        self._registry.counter(
            "exec.record_batches_total",
            help="worker record batches accepted by the supervisor").inc()
        self._registry.histogram(
            "exec.batch_size",
            help="records per accepted worker batch").observe(len(records))
        for record in fresh:
            self.records[(record["layer"], record["seq"])] = record
            emit_injection_telemetry(record, self.kind, self.location)
            if self.progress is not None:
                self.progress.record(record["layer"], record["seq"],
                                     record["sdc_rate"])
        if fresh and self.progress is not None:
            self.progress.maybe_log()
        state = self._states.get(shard_id)
        if state is not None:
            for record in records:
                state.pending.discard(record["seq"])
            if not state.pending and state.status == "deferred":
                # a straggler batch from a killed attempt completed the
                # shard before its retry fired: cancel the retry
                self._settle(state, via="straggler")
        if self.config.on_record is not None:
            for _ in records:
                self.config.on_record(len(self.records))

    def _finish_shard(self, shard_id: int, attempt: int, worker_id: int) -> None:
        self._release_worker(worker_id, shard_id)
        state = self._states.get(shard_id)
        if state is None or state.status in ("done", "quarantined"):
            return
        entry = self._inflight.get(shard_id)
        current = entry is not None and entry[2] == attempt
        if current:
            self._inflight.pop(shard_id, None)
        elif state.pending:
            return  # stale completion that did not actually cover the work
        if state.pending:
            # records were lost in flight (should not happen with an intact
            # queue); re-dispatch the remainder without burning a retry
            logger.warning("shard %d finished with %d seq(s) unaccounted; "
                           "re-dispatching", shard_id, len(state.pending))
            self._dispatch(state, count_attempt=False)
            return
        self._settle(state, via="done")

    def _settle(self, state: _ShardState, via: str) -> None:
        state.status = "done"
        self._inflight.pop(state.shard.shard_id, None)
        self._deferred = [(due, sid) for due, sid in self._deferred
                          if sid != state.shard.shard_id]
        started = self._shard_started.get(state.shard.shard_id)
        dur = (time.monotonic() - started) if started is not None else 0.0
        self._registry.histogram(
            "exec.shard_seconds",
            help="wall-clock per completed shard attempt").observe(dur)
        if self._tracer.enabled:
            self._tracer.event("exec.shard", shard_id=state.shard.shard_id,
                               layer=state.shard.layer,
                               seqs=len(state.shard.seqs),
                               attempts=state.attempts, via=via, dur_s=dur)

    # ------------------------------------------------------------------
    # dispatch / assignment / retry / quarantine
    # ------------------------------------------------------------------
    def _dispatch(self, state: _ShardState, count_attempt: bool = True) -> None:
        """Queue a shard (or its remainder) for assignment to a worker."""
        if count_attempt:
            state.attempts += 1
        state.status = "queued"
        if state.shard.shard_id not in self._backlog:
            self._backlog.append(state.shard.shard_id)

    def _pump(self) -> None:
        """Assign backlogged shards to idle workers (lowest id first)."""
        while self._backlog and self._pool.idle:
            shard_id = self._backlog.pop(0)
            state = self._states[shard_id]
            if state.status != "queued":
                continue
            worker_id = min(self._pool.idle)
            self._assign(state, worker_id)

    def _assign(self, state: _ShardState, worker_id: int) -> None:
        shard_id = state.shard.shard_id
        remaining = state.shard.without(set(state.shard.seqs) - state.pending)
        state.status = "inflight"
        self._pool.idle.discard(worker_id)
        self._pool.worker_shard[worker_id] = shard_id
        # the deadline is armed immediately: it is re-armed (excluding queue
        # wait) when the worker reports "start", but must exist even if the
        # worker never manages to send that message
        deadline = (time.monotonic() + self.config.shard_timeout
                    if self.config.shard_timeout is not None else None)
        self._inflight[shard_id] = (worker_id, deadline, state.attempts)
        self._shard_started.setdefault(shard_id, time.monotonic())
        self._pool.send(worker_id, (remaining, state.attempts))

    def _release_worker(self, worker_id: int, shard_id: int | None) -> None:
        self._pool.release(worker_id, shard_id)

    def _promote_deferred(self, now: float) -> None:
        due = [sid for when, sid in self._deferred if when <= now]
        if not due:
            return
        self._deferred = [(when, sid) for when, sid in self._deferred
                          if when > now]
        for sid in due:
            state = self._states[sid]
            if state.status == "deferred":
                self._dispatch(state)

    def _fail_shard(self, shard_id: int, reason: str) -> None:
        state = self._states.get(shard_id)
        if state is None or state.status in ("done", "quarantined"):
            return
        state.last_error = reason
        if not state.pending:
            self._settle(state, via="failed-but-complete")
            return
        if state.attempts > self.config.max_retries:
            self._quarantine(state, reason)
            return
        delay = min(self.config.backoff_cap,
                    self.config.backoff_base * (2 ** (state.attempts - 1)))
        state.status = "deferred"
        self._deferred.append((time.monotonic() + delay, shard_id))
        self.shard_retries += 1
        self._registry.counter(
            "exec.shard_retries_total",
            help="shard re-dispatches after a failed attempt").inc()
        logger.warning("shard %d (%s, %d seq(s) left) failed: %s — retry "
                       "%d/%d in %.2fs", shard_id, state.shard.layer,
                       len(state.pending), reason, state.attempts,
                       self.config.max_retries, delay)

    def _quarantine(self, state: _ShardState, reason: str) -> None:
        state.status = "quarantined"
        self._inflight.pop(state.shard.shard_id, None)
        info = {
            "shard_id": state.shard.shard_id,
            "layer": state.shard.layer,
            "seqs": sorted(state.pending),
            "attempts": state.attempts,
            "reason": reason,
        }
        self.quarantined.append(info)
        if self.journal is not None:
            self.journal.append_quarantine(info)
        self._registry.counter(
            "exec.shards_quarantined_total",
            help="shards abandoned after exhausting their retry budget").inc()
        if self._tracer.enabled:
            self._tracer.event("exec.quarantine", **info)
        logger.error("shard %d (%s) quarantined after %d attempts: %s — "
                     "campaign continues without its %d injection(s)",
                     state.shard.shard_id, state.shard.layer, state.attempts,
                     reason, len(state.pending))

    # ------------------------------------------------------------------
    # worker pool supervision
    # ------------------------------------------------------------------
    def _check_timeouts(self, now: float) -> None:
        if self.config.shard_timeout is None:
            return
        for shard_id, (worker_id, deadline, _attempt) in \
                list(self._inflight.items()):
            if deadline is None or now <= deadline:
                continue
            self._inflight.pop(shard_id, None)
            self._registry.counter(
                "exec.shard_timeouts_total",
                help="shard attempts killed for exceeding the timeout").inc()
            logger.warning("shard %d exceeded its %.2fs timeout; killing "
                           "worker %d", shard_id, self.config.shard_timeout,
                           worker_id)
            self._pool.kill(worker_id)
            if self._unsettled() and not self._stop:
                self._pool.spawn()
            self._fail_shard(shard_id, "timeout")

    def _check_worker_deaths(self) -> None:
        for worker_id, process in list(self._pool.processes.items()):
            if process.is_alive() or worker_id in self._pool.clean_exits:
                continue
            exitcode = process.exitcode
            shard_id = self._pool.worker_shard.get(worker_id)
            self._pool.kill(worker_id)
            self.worker_deaths += 1
            self._registry.counter(
                "exec.worker_deaths_total",
                help="workers that died without a clean exit").inc()
            logger.warning("worker %d died (exit code %s)%s", worker_id,
                           exitcode,
                           f" while running shard {shard_id}"
                           if shard_id is not None else "")
            if shard_id is not None and shard_id in self._inflight:
                self._inflight.pop(shard_id, None)
                self._fail_shard(shard_id,
                                 f"worker died (exit code {exitcode})")
            if self._unsettled() and not self._stop:
                self._pool.spawn()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        if self.journal is not None:
            self.journal.flush(fsync=True)
        if self._stop:
            # interrupted: the journal holds everything completed; workers
            # may be mid-injection — terminate, do not wait
            self._pool.close()
            return
        live = [wid for wid, proc in self._pool.processes.items()
                if proc.is_alive() and wid not in self._pool.clean_exits]
        for worker_id in live:
            self._pool.send(worker_id, None)
        deadline = time.monotonic() + self.config.shutdown_grace
        pending = set(live)
        while pending and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=0.1)
            except _queue.Empty:
                pending = {wid for wid in pending
                           if self._pool.processes.get(wid) is not None
                           and self._pool.processes[wid].is_alive()}
                continue
            self._handle_message(message)
            pending -= self._pool.clean_exits
        self._pool.close()

    def _reap(self) -> None:
        self._pool.close()
        try:
            self._result_queue.close()
            self._result_queue.join_thread()
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass


def run_parallel_campaign(
    platform,
    golden,
    images,
    target_layers: list[str],
    sampling: dict,
    kind: str,
    location: str,
    use_resume: bool,
    config: ExecConfig,
    journal=None,
    completed_records: dict | None = None,
    progress=None,
    fault_spec=None,
    protection=None,
) -> ParallelOutcome:
    """Execute a campaign's outstanding plans on a supervised worker pool.

    ``completed_records`` (e.g. loaded from a write-ahead journal) are
    treated as done: their seqs are never dispatched and they appear in the
    returned record set unchanged.  Falls back to the serial executor —
    with identical results — on platforms without the ``fork`` start
    method.
    """
    completed_records = dict(completed_records or {})
    if "fork" not in multiprocessing.get_all_start_methods():
        logger.warning("multiprocessing 'fork' start method unavailable; "
                       "running the campaign serially")
        from ..core.campaign import _run_serial
        _run_serial(platform, golden, images, target_layers, sampling,
                    kind, location, use_resume, journal, completed_records,
                    injection_latency=config.injection_latency,
                    fault_batch=config.fault_batch, progress=progress,
                    fault_spec=fault_spec, protection=protection)
        return ParallelOutcome(records=completed_records)
    shards = plan_shards(sampling, completed=set(completed_records),
                         chunk_size=config.chunk_size, workers=config.workers,
                         layer_order=target_layers)
    blas_threads = config.blas_threads
    if blas_threads is None:
        blas_threads = max(1, (os.cpu_count() or 1) // max(1, config.workers))
    registry = get_registry()
    shm = None
    session = getattr(platform, "resume_session", None)
    if config.shared_cache and use_resume and session is not None \
            and hasattr(session.cache, "entries"):
        entries = session.cache.entries()
        if entries:
            try:
                shm = SharedGoldenCache.publish(entries)
            except (SharedCacheError, OSError) as exc:
                # shared memory is an optimization: fall back to the
                # fork-inherited copy-on-write caches rather than failing
                logger.warning("could not publish shared golden cache "
                               "(%s); workers keep private copies", exc)
            else:
                registry.counter(
                    "exec.shm_publish_total",
                    help="shared golden caches published").inc()
                registry.gauge(
                    "exec.shm_bytes",
                    help="bytes in the published shared golden cache"
                    ).set(float(shm.nbytes))
    payload = WorkerPayload(platform=platform, golden=golden, images=images,
                            plans={name: lp.plans
                                   for name, lp in sampling.items()},
                            use_resume=use_resume,
                            batch_records=config.batch_records,
                            blas_threads=blas_threads,
                            shm_cache=shm,
                            injection_latency=config.injection_latency,
                            fault_batch=config.fault_batch,
                            fault_spec=fault_spec,
                            protection=protection,
                            trace_parent=current_span_id(),
                            fault=config.worker_fault)
    supervisor = CampaignSupervisor(payload, shards, config, journal=journal,
                                    kind=kind, location=location,
                                    progress=progress)
    supervisor.records = completed_records
    try:
        outcome = supervisor.run()
    finally:
        if shm is not None:
            # drop the publisher's reference; then force-unlink in case a
            # SIGKILLed worker left the refcount dangling (idempotent —
            # /dev/shm must be clean however the campaign ended)
            shm.release()
            shm.unlink()
            registry.counter(
                "exec.shm_unlink_total",
                help="shared golden cache segments unlinked").inc()
            registry.gauge("exec.shm_bytes").set(0.0)
    return outcome
