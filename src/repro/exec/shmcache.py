"""Shared-memory publication of the golden activation cache.

The resume engine (:mod:`repro.core.resume`) records the golden pass once
and replays cached layer outputs per injection.  In parallel campaigns the
workers *fork* after the recording, so they inherit the cache copy-on-write
— but every page a worker touches is privately duplicated, and a worker
that re-records (or whose LRU churns) silently re-pays the golden prefix.
This module removes both costs: the parent packs the recorded activations
into **one** :class:`multiprocessing.shared_memory.SharedMemory` segment and
every worker maps the same physical pages **read-only**.

* :func:`SharedGoldenCache.publish` — parent side.  Copies each cached
  array into a single named segment (``repro-golden-<pid>-<nonce>``) behind
  a JSON index, so the segment is self-describing and can also be attached
  by name from an unrelated process (:meth:`SharedGoldenCache.attach`).
* :meth:`SharedGoldenCache.array` — zero-copy, read-only numpy views into
  the segment (``writeable=False``: a worker that tries to mutate golden
  state gets a loud ``ValueError``, never silent divergence).
* **Refcounted unlink-on-last-close.** The publisher holds one reference;
  every worker that adopts the cache :meth:`acquire`\\ s another and
  :meth:`release`\\ s it on clean shutdown.  Whoever drops the count to zero
  unlinks the segment.  Because workers can die without releasing (SIGKILL,
  OOM), the supervisor additionally force-:meth:`unlink`\\ s at shutdown —
  unlink is idempotent, so ``/dev/shm`` is left clean either way (asserted
  by the crash-path stress tests).

Segment layout::

    [8-byte little-endian header length n]
    [n bytes of JSON: {"version": 1, "entries": {key: {offset, shape, dtype}}}]
    [64-byte-aligned array payloads ...]

The cache is **read-only by contract**: consumers plug it into a
:class:`repro.core.resume.ResumeSession` via
:meth:`~repro.core.resume.ResumeSession.adopt_shared`, whose facade raises
on any write path (recording, ``put``, ``clear``).
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import secrets
import struct
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedCacheError", "SharedGoldenCache", "SEGMENT_PREFIX",
           "live_segments"]

logger = logging.getLogger("repro.exec")

#: prefix of every segment this module creates (leak checks glob for it)
SEGMENT_PREFIX = "repro-golden-"

_ALIGN = 64
_LEN = struct.Struct("<Q")
_LAYOUT_VERSION = 1


class SharedCacheError(RuntimeError):
    """A shared golden cache was used in a way its layout forbids."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def live_segments() -> list[str]:
    """Names of this module's segments currently present in ``/dev/shm``.

    Linux-only introspection used by leak tests and post-mortem tooling;
    returns ``[]`` where ``/dev/shm`` does not exist.
    """
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith(SEGMENT_PREFIX))
    except OSError:
        return []


class SharedGoldenCache:
    """One published golden activation cache in a shared-memory segment.

    Instances are fork-friendly: a worker inheriting the object reuses the
    parent's mapping (no re-attach syscall) and shares the refcount through
    the inherited ``multiprocessing.Value``.  Out-of-tree processes attach
    by segment name instead.
    """

    def __init__(self, shm: shared_memory.SharedMemory, index: dict,
                 refcount=None, publisher: bool = False):
        self._shm = shm
        self._index = index
        self._refcount = refcount
        self._publisher = publisher
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------
    # creation / attachment
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, entries, ctx=None) -> "SharedGoldenCache":
        """Pack ``entries`` (an iterable of ``(key, ndarray)``) into one
        shared segment and return the publisher handle (refcount = 1).

        Keys are stringified into the JSON index (the resume engine uses int
        execution positions; any ``str()``-stable key works).  Raises
        :class:`SharedCacheError` on an empty entry set — publishing nothing
        is always a caller bug.
        """
        packed: list[tuple[str, np.ndarray]] = []
        for key, array in entries:
            arr = np.ascontiguousarray(array)
            packed.append((str(key), arr))
        if not packed:
            raise SharedCacheError("refusing to publish an empty cache")
        relative: dict[str, dict] = {}
        body = 0
        for skey, arr in packed:
            body = _aligned(body)
            relative[skey] = {"offset": body, "shape": list(arr.shape),
                              "dtype": arr.dtype.str}
            body += arr.nbytes

        def _serialize(start: int) -> tuple[bytes, dict]:
            idx = {k: {**m, "offset": m["offset"] + start}
                   for k, m in relative.items()}
            blob = json.dumps({"version": _LAYOUT_VERSION,
                               "entries": idx}).encode("utf-8")
            return blob, idx

        # shifting the offsets lengthens the JSON header, which shifts the
        # offsets again — iterate to a fixed point (converges in <= 2 steps)
        data_start = _aligned(_LEN.size)
        while True:
            header, index = _serialize(data_start)
            need = _aligned(_LEN.size + len(header))
            if need <= data_start:
                break
            data_start = need
        total = data_start + body
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        shm.buf[:_LEN.size] = _LEN.pack(len(header))
        shm.buf[_LEN.size:_LEN.size + len(header)] = header
        for skey, arr in packed:
            meta = index[skey]
            start = meta["offset"]
            view = np.ndarray(arr.shape, dtype=np.dtype(meta["dtype"]),
                              buffer=shm.buf, offset=start)
            view[...] = arr
        ctx = ctx if ctx is not None else multiprocessing.get_context("fork")
        refcount = ctx.Value("q", 1)
        logger.debug("published shared golden cache %s (%d arrays, %d bytes)",
                     name, len(index), total)
        return cls(shm, index, refcount=refcount, publisher=True)

    @classmethod
    def attach(cls, name: str) -> "SharedGoldenCache":
        """Attach to an existing segment by name (read-only, no refcount).

        Used by out-of-tree consumers (debug tooling, spawn-based pools);
        fork-inherited workers reuse the publisher's mapping instead.
        """
        shm = shared_memory.SharedMemory(name=name)
        (header_len,) = _LEN.unpack(bytes(shm.buf[:_LEN.size]))
        header = json.loads(bytes(
            shm.buf[_LEN.size:_LEN.size + header_len]).decode("utf-8"))
        if header.get("version") != _LAYOUT_VERSION:
            shm.close()
            raise SharedCacheError(
                f"segment {name} has layout version {header.get('version')!r}; "
                f"this build reads version {_LAYOUT_VERSION}")
        return cls(shm, header["entries"], refcount=None, publisher=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the underlying segment."""
        return self._shm.size

    def keys(self) -> list[str]:
        return list(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key) -> bool:
        return str(key) in self._index

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def array(self, key) -> np.ndarray | None:
        """Read-only, zero-copy view of ``key``'s array (None if absent)."""
        if self._closed:
            raise SharedCacheError("shared golden cache is closed")
        meta = self._index.get(str(key))
        if meta is None:
            return None
        view = np.ndarray(tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]),
                          buffer=self._shm.buf, offset=meta["offset"])
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # refcounted lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> "SharedGoldenCache":
        """Take a reference (a fork-inherited worker adopting the cache)."""
        if self._refcount is None:
            raise SharedCacheError(
                "cannot acquire a by-name attachment; only fork-inherited "
                "handles share the publisher's refcount")
        with self._refcount.get_lock():
            if self._refcount.value <= 0:
                raise SharedCacheError(
                    "shared golden cache already fully released")
            self._refcount.value += 1
        return self

    def release(self) -> bool:
        """Drop one reference; the last holder unlinks.  Returns True when
        this call performed the unlink."""
        if self._refcount is None:
            self.close()
            return False
        with self._refcount.get_lock():
            self._refcount.value -= 1
            last = self._refcount.value <= 0
        if last:
            self.unlink()
        self.close()
        return last

    def close(self) -> None:
        """Detach this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass

    def unlink(self) -> bool:
        """Remove the segment from the system (idempotent).

        Safe to call after worker SIGKILLs left the refcount dangling — the
        supervisor force-unlinks at shutdown so ``/dev/shm`` never leaks.
        """
        if self._unlinked:
            return False
        self._unlinked = True
        try:
            self._shm.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:  # pragma: no cover - exotic hosts
            return False
