"""The campaign worker process: executes shards, streams records back.

Workers are created with the ``fork`` start method *after* the parent has
attached the platform, captured the golden pass and sampled every plan —
so each worker inherits a private copy-on-write copy of the whole
campaign state (model, hooks, activation cache, plan lists) and nothing
heavyweight ever crosses a pipe.  The only traffic is the task queue
(shards in) and the result queue (small tuples out).

Protocol (messages on the result queue, all ``(type, worker_id, payload,
timestamp)`` tuples):

* ``("ready", wid, pid, t)`` — worker is up and adopted the resume cache;
* ``("start", wid, (shard_id, attempt), t)`` — shard attempt began;
* ``("record", wid, (shard_id, attempt, record), t)`` — one injection
  finished.  Streaming records one at a time (instead of batching per
  shard) is what makes the write-ahead journal capture partial shard
  progress **and** doubles as a liveness heartbeat;
* ``("done", wid, (shard_id, attempt), t)`` — shard attempt finished;
* ``("error", wid, (shard_id, attempt, message), t)`` — shard attempt
  raised; the worker survives and awaits its next task;
* ``("telemetry", wid, {shard_id, attempt, metrics, events}, t)`` — the
  shard attempt's observability payload: a serialized
  :meth:`~repro.obs.telemetry.RunScope.delta` of every metric the attempt
  contributed (flip counters, numeric-health histograms, span timings) and
  the attempt's buffered trace events.  The supervisor folds the metrics
  into the parent registry (:func:`~repro.obs.telemetry.merge_metric_delta`)
  and replays the events into the parent trace sink tagged with this
  ``worker_id`` — so ``--trace --workers N`` records what ``--workers 0``
  would.  Sent after the work, before ``done``/``error``; a worker killed
  mid-attempt loses that attempt's (partial) telemetry, never duplicates it;
* ``("exit", wid, resume_stats | None, t)`` — worker drained the sentinel
  and is shutting down cleanly (carries its activation-cache counters).

Every message updates the worker's heartbeat in the supervisor; a worker
that stops producing messages mid-shard is caught by the shard timeout,
and one that dies outright is caught by ``Process.is_alive()``.

SIGINT is ignored in workers: a Ctrl-C in the foreground is delivered to
the whole process group, and shutdown must be coordinated by the
supervisor (flush the journal first), not by workers dying mid-record.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["WorkerPayload", "worker_main"]


@dataclass
class WorkerPayload:
    """Everything a forked worker needs (inherited, never pickled)."""

    platform: object
    golden: object
    images: object
    plans: dict  # layer -> list of injection plans, indexed by seq
    use_resume: bool
    #: test hook: called as ``fault(worker_id, shard, attempt)`` before a
    #: shard attempt executes — tests use it to hang, crash (``os._exit``)
    #: or raise on chosen shards to exercise the supervision machinery
    fault: Callable | None = None


def worker_main(worker_id: int, payload: WorkerPayload,
                task_queue, result_queue) -> None:
    """The worker loop: pull shards until the ``None`` sentinel arrives."""
    # shutdown is the supervisor's job; a foreground Ctrl-C must not kill
    # workers mid-record (the supervisor terminates us after the journal
    # is flushed)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from ..core.campaign import execute_injection
    from ..obs.telemetry import get_registry
    from ..obs.tracing import BufferingTracer, get_tracer, set_tracer

    session = getattr(payload.platform, "resume_session", None)
    if session is not None:
        # claim the forked copy of the activation cache: per-worker stats
        # start at zero so the supervisor can aggregate true worker deltas
        session.adopt()

    # The forked copy of the parent's tracer shares the parent's buffered
    # file handle — writing through it would interleave bytes mid-line.
    # Replace it with an in-memory buffer whose events travel over the
    # result queue instead; the parent replays them worker_id-tagged.
    buffer = None
    if get_tracer().enabled:
        buffer = BufferingTracer()
        set_tracer(buffer)
    registry = get_registry()

    result_queue.put(("ready", worker_id, None, time.time()))
    while True:
        task = task_queue.get()
        if task is None:
            stats = session.stats.as_dict() if session is not None else None
            result_queue.put(("exit", worker_id, stats, time.time()))
            return
        shard, attempt = task
        result_queue.put(("start", worker_id, (shard.shard_id, attempt),
                          time.time()))
        failure = None
        # every metric the attempt touches (injection flip counters,
        # numeric-health streams, span timings) is captured as a delta and
        # streamed back — worker registries die with the fork otherwise
        with registry.run_scope(f"w{worker_id}-s{shard.shard_id}-a{attempt}") \
                as scope:
            try:
                span = (buffer.span("exec.worker_shard", attempt=attempt,
                                    **shard.summary())
                        if buffer is not None else None)
                if payload.fault is not None:
                    payload.fault(worker_id, shard, attempt)
                plans = payload.plans[shard.layer]
                if span is not None:
                    span.__enter__()
                try:
                    for seq in shard.seqs:
                        record = execute_injection(
                            payload.platform, payload.golden, payload.images,
                            plans[seq], payload.use_resume)
                        record["layer"] = shard.layer
                        record["seq"] = seq
                        result_queue.put(("record", worker_id,
                                          (shard.shard_id, attempt, record),
                                          time.time()))
                finally:
                    if span is not None:
                        span.__exit__(None, None, None)
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                failure = f"{type(exc).__name__}: {exc}"
        metrics = scope.delta()
        events = buffer.drain() if buffer is not None else []
        if metrics or events:
            result_queue.put(("telemetry", worker_id,
                              {"shard_id": shard.shard_id, "attempt": attempt,
                               "metrics": metrics, "events": events},
                              time.time()))
        if failure is not None:
            result_queue.put(("error", worker_id,
                              (shard.shard_id, attempt, failure),
                              time.time()))
            continue
        result_queue.put(("done", worker_id, (shard.shard_id, attempt),
                          time.time()))
