"""The campaign worker process: executes shards, streams records back.

Workers are created with the ``fork`` start method *after* the parent has
attached the platform, captured the golden pass and sampled every plan —
so each worker inherits a private copy-on-write copy of the whole
campaign state (model, hooks, activation cache, plan lists) and nothing
heavyweight ever crosses a pipe.  The only traffic is the task queue
(shards in) and the result queue (small tuples out).

Protocol (messages on the result queue, all ``(type, worker_id, payload,
timestamp)`` tuples):

* ``("ready", wid, pid, t)`` — worker is up and adopted the resume cache;
* ``("start", wid, (shard_id, attempt), t)`` — shard attempt began;
* ``("record", wid, (shard_id, attempt, record), t)`` — one injection
  finished.  Streaming records one at a time (instead of batching per
  shard) is what makes the write-ahead journal capture partial shard
  progress **and** doubles as a liveness heartbeat;
* ``("done", wid, (shard_id, attempt), t)`` — shard attempt finished;
* ``("error", wid, (shard_id, attempt, message), t)`` — shard attempt
  raised; the worker survives and awaits its next task;
* ``("exit", wid, resume_stats | None, t)`` — worker drained the sentinel
  and is shutting down cleanly (carries its activation-cache counters).

Every message updates the worker's heartbeat in the supervisor; a worker
that stops producing messages mid-shard is caught by the shard timeout,
and one that dies outright is caught by ``Process.is_alive()``.

SIGINT is ignored in workers: a Ctrl-C in the foreground is delivered to
the whole process group, and shutdown must be coordinated by the
supervisor (flush the journal first), not by workers dying mid-record.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["WorkerPayload", "worker_main"]


@dataclass
class WorkerPayload:
    """Everything a forked worker needs (inherited, never pickled)."""

    platform: object
    golden: object
    images: object
    plans: dict  # layer -> list of injection plans, indexed by seq
    use_resume: bool
    #: test hook: called as ``fault(worker_id, shard, attempt)`` before a
    #: shard attempt executes — tests use it to hang, crash (``os._exit``)
    #: or raise on chosen shards to exercise the supervision machinery
    fault: Callable | None = None


def worker_main(worker_id: int, payload: WorkerPayload,
                task_queue, result_queue) -> None:
    """The worker loop: pull shards until the ``None`` sentinel arrives."""
    # shutdown is the supervisor's job; a foreground Ctrl-C must not kill
    # workers mid-record (the supervisor terminates us after the journal
    # is flushed)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from ..core.campaign import execute_injection

    session = getattr(payload.platform, "resume_session", None)
    if session is not None:
        # claim the forked copy of the activation cache: per-worker stats
        # start at zero so the supervisor can aggregate true worker deltas
        session.adopt()

    result_queue.put(("ready", worker_id, None, time.time()))
    while True:
        task = task_queue.get()
        if task is None:
            stats = session.stats.as_dict() if session is not None else None
            result_queue.put(("exit", worker_id, stats, time.time()))
            return
        shard, attempt = task
        result_queue.put(("start", worker_id, (shard.shard_id, attempt),
                          time.time()))
        try:
            if payload.fault is not None:
                payload.fault(worker_id, shard, attempt)
            plans = payload.plans[shard.layer]
            for seq in shard.seqs:
                record = execute_injection(payload.platform, payload.golden,
                                           payload.images, plans[seq],
                                           payload.use_resume)
                record["layer"] = shard.layer
                record["seq"] = seq
                result_queue.put(("record", worker_id,
                                  (shard.shard_id, attempt, record),
                                  time.time()))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result_queue.put(("error", worker_id,
                              (shard.shard_id, attempt,
                               f"{type(exc).__name__}: {exc}"),
                              time.time()))
            continue
        result_queue.put(("done", worker_id, (shard.shard_id, attempt),
                          time.time()))
