"""The campaign worker process: executes shards, streams record batches back.

Workers are created with the ``fork`` start method *after* the parent has
attached the platform, captured the golden pass and sampled every plan —
so each worker inherits a private copy-on-write copy of the whole
campaign state (model, hooks, plan lists) and nothing heavyweight ever
crosses a pipe.  When the supervisor published the golden activation cache
to shared memory (:mod:`repro.exec.shmcache`), the worker adopts *that*
instead of its inherited private copy — every worker then replays the same
physical pages read-only (:meth:`repro.core.resume.ResumeSession.adopt_shared`),
so the golden prefix is computed once per campaign, not once per worker.

At startup each worker **pins its BLAS/OpenMP thread budget** to
``payload.blas_threads`` (the supervisor computes ``cores // workers``,
floor 1): N workers each spinning a full-width BLAS pool oversubscribe the
machine into anti-scaling, which is exactly what the pre-batching executor
measured (0.82x at 4 workers).

Protocol (messages on the result queue, all ``(type, worker_id, payload,
timestamp)`` tuples):

* ``("ready", wid, {"pid", "shm_adopted"}, t)`` — worker is up and adopted
  the (shared or private) resume cache;
* ``("start", wid, (shard_id, attempt), t)`` — shard attempt began;
* ``("records", wid, (shard_id, attempt, (record, ...)), t)`` — a **batch**
  of completed injections.  Batches are flushed when they reach
  ``payload.batch_records`` and always on the shard boundary (and before an
  ``error`` report, so partial progress survives a failing shard).  Batching
  replaces the one-message-per-record protocol whose per-record IPC
  dominated small campaigns; liveness is carried by the
  start/records/done cadence plus the supervisor's shard timeout;
* ``("done", wid, (shard_id, attempt), t)`` — shard attempt finished;
* ``("error", wid, (shard_id, attempt, message), t)`` — shard attempt
  raised; the worker survives and awaits its next task;
* ``("telemetry", wid, {shard_id, attempt, metrics, events}, t)`` — the
  shard attempt's observability payload: a serialized
  :meth:`~repro.obs.telemetry.RunScope.delta` of every metric the attempt
  contributed and the attempt's buffered trace events, folded into the
  parent registry/tracer tagged with this ``worker_id``;
* ``("exit", wid, resume_stats | None, t)`` — worker drained the sentinel
  and is shutting down cleanly (carries its activation-cache counters and
  releases its shared-cache reference).

A worker that stops producing messages mid-shard is caught by the shard
timeout, and one that dies outright is caught by ``Process.is_alive()``.
A worker killed mid-batch loses at most ``batch_records - 1`` un-flushed
records — the supervisor re-dispatches the shard remainder and the
re-executed records are bit-identical, so nothing observable changes.

SIGINT is ignored in workers: a Ctrl-C in the foreground is delivered to
the whole process group, and shutdown must be coordinated by the
supervisor (flush the journal first), not by workers dying mid-record.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["WorkerPayload", "worker_main", "limit_blas_threads"]

#: environment knobs honoured by every BLAS/OpenMP runtime we may meet
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


@dataclass
class WorkerPayload:
    """Everything a forked worker needs (inherited, never pickled)."""

    platform: object
    golden: object
    images: object
    plans: dict  # layer -> list of injection plans, indexed by seq
    use_resume: bool
    #: records per result-queue message (flushed early on shard boundaries)
    batch_records: int = 32
    #: BLAS/OMP thread budget per worker (None = leave the runtime alone)
    blas_threads: int | None = None
    #: shared-memory golden cache published by the supervisor (None = the
    #: worker keeps its fork-inherited private copy)
    shm_cache: object | None = None
    #: bench/test hook: emulated per-injection device latency (seconds);
    #: the serial executor honours the same knob so speedups stay apples
    #: to apples (see benchmarks/bench_parallel_campaign.py)
    injection_latency: float = 0.0
    #: independent faults evaluated per forward pass (fault-axis batching);
    #: records stay per-plan and bit-identical to the K=1 loop
    fault_batch: int = 1
    #: the campaign's fault-model spec, stamped into records when
    #: non-default (``"single"``/None leaves records byte-identical)
    fault_spec: str | None = None
    #: the campaign's ECC protection model (None = unprotected); verdicts
    #: are a pure function of the plan, so worker-side classification is
    #: bit-identical to the serial path
    protection: object | None = None
    #: the supervisor's active ``campaign.run`` span id: the worker seeds
    #: its span-context stack with it so every worker span parents into
    #: the campaign's trace tree (see :mod:`repro.obs.tracing`)
    trace_parent: str | None = None
    #: test hook: called as ``fault(worker_id, shard, attempt)`` before a
    #: shard attempt executes — tests use it to hang, crash (``os._exit``)
    #: or raise on chosen shards to exercise the supervision machinery
    fault: Callable | None = None


def limit_blas_threads(n: int) -> None:
    """Best-effort cap of this process's BLAS/OpenMP thread pools at ``n``.

    Environment variables cover runtimes that initialise lazily after the
    fork; for an OpenBLAS already loaded by numpy we additionally call its
    ``openblas_set_num_threads`` through ``threadpoolctl`` when available.
    Everything is advisory — a runtime we cannot reach simply keeps its
    defaults (correctness never depends on this, only scaling).
    """
    n = max(1, int(n))
    for var in _THREAD_ENV_VARS:
        os.environ[var] = str(n)
    try:  # optional dependency; the env vars above are the fallback
        import threadpoolctl
        threadpoolctl.threadpool_limits(limits=n)
    except Exception:  # noqa: BLE001 - advisory only
        pass


def worker_main(worker_id: int, payload: WorkerPayload,
                task_queue, result_queue) -> None:
    """The worker loop: pull shards until the ``None`` sentinel arrives."""
    # shutdown is the supervisor's job; a foreground Ctrl-C must not kill
    # workers mid-record (the supervisor terminates us after the journal
    # is flushed)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if payload.blas_threads is not None:
        limit_blas_threads(payload.blas_threads)

    from ..core.campaign import execute_injection_batch
    from ..obs.telemetry import get_registry
    from ..obs.tracing import BufferingTracer, get_tracer, seed_span_context, \
        set_tracer

    shm_adopted = False
    session = getattr(payload.platform, "resume_session", None)
    if session is not None:
        if payload.shm_cache is not None:
            # replay the parent's published golden prefix straight out of
            # shared memory: one physical copy for the whole pool, and any
            # accidental write path raises instead of silently diverging
            payload.shm_cache.acquire()
            session.adopt_shared(payload.shm_cache)
            shm_adopted = True
        else:
            # claim the forked copy of the activation cache: per-worker
            # stats start at zero so the supervisor can aggregate deltas
            session.adopt()

    # The forked copy of the parent's tracer shares the parent's buffered
    # file handle — writing through it would interleave bytes mid-line.
    # Replace it with an in-memory buffer whose events travel over the
    # result queue instead; the parent replays them worker_id-tagged.
    buffer = None
    if get_tracer().enabled:
        buffer = BufferingTracer()
        set_tracer(buffer)
        # parent this worker's spans to the supervisor's campaign.run span
        # (the fork-inherited stack is replaced, not trusted: it reflects
        # whatever thread state the fork happened to copy)
        seed_span_context(payload.trace_parent)
    registry = get_registry()
    batch_size = max(1, int(payload.batch_records))
    latency = float(payload.injection_latency or 0.0)

    result_queue.put(("ready", worker_id,
                      {"pid": os.getpid(), "shm_adopted": shm_adopted},
                      time.time()))
    try:
        while True:
            task = task_queue.get()
            if task is None:
                stats = session.stats.as_dict() if session is not None else None
                result_queue.put(("exit", worker_id, stats, time.time()))
                return
            shard, attempt = task
            result_queue.put(("start", worker_id, (shard.shard_id, attempt),
                              time.time()))
            failure = None
            batch: list[dict] = []

            def flush_batch():
                if batch:
                    result_queue.put(("records", worker_id,
                                      (shard.shard_id, attempt, tuple(batch)),
                                      time.time()))
                    batch.clear()

            # every metric the attempt touches (injection flip counters,
            # numeric-health streams, span timings) is captured as a delta
            # and streamed back — worker registries die with the fork
            with registry.run_scope(
                    f"w{worker_id}-s{shard.shard_id}-a{attempt}") as scope:
                try:
                    span = (buffer.span("exec.worker_shard", attempt=attempt,
                                        **shard.summary())
                            if buffer is not None else None)
                    if payload.fault is not None:
                        payload.fault(worker_id, shard, attempt)
                    plans = payload.plans[shard.layer]
                    if span is not None:
                        span.__enter__()
                    try:
                        seqs = list(shard.seqs)
                        chunk = max(1, int(payload.fault_batch))
                        for i in range(0, len(seqs), chunk):
                            group = seqs[i:i + chunk]
                            group_records = execute_injection_batch(
                                payload.platform, payload.golden,
                                payload.images,
                                [plans[seq] for seq in group],
                                payload.use_resume,
                                fault_spec=payload.fault_spec,
                                protection=payload.protection)
                            for seq, record in zip(group, group_records):
                                record["layer"] = shard.layer
                                record["seq"] = seq
                                batch.append(record)
                                if len(batch) >= batch_size:
                                    flush_batch()
                            # one device round-trip serviced the whole chunk
                            if latency > 0.0:
                                time.sleep(latency)
                    finally:
                        if span is not None:
                            span.__exit__(None, None, None)
                except BaseException as exc:  # noqa: BLE001 - report, don't die
                    failure = f"{type(exc).__name__}: {exc}"
            # completed work always reaches the supervisor before the
            # attempt's outcome does — even when the attempt failed
            flush_batch()
            metrics = scope.delta()
            events = buffer.drain() if buffer is not None else []
            if metrics or events:
                result_queue.put(("telemetry", worker_id,
                                  {"shard_id": shard.shard_id,
                                   "attempt": attempt,
                                   "metrics": metrics, "events": events},
                                  time.time()))
            if failure is not None:
                result_queue.put(("error", worker_id,
                                  (shard.shard_id, attempt, failure),
                                  time.time()))
                continue
            result_queue.put(("done", worker_id, (shard.shard_id, attempt),
                              time.time()))
    finally:
        if shm_adopted:
            payload.shm_cache.release()
