"""Training with number-format emulation in the loop (§V-B).

GoldenEye supports backpropagation through the emulation (straight-through
estimator), so models can be *trained* under a low-precision format — the
paper's quantization-aware-training direction.  This example trains the same
CNN (a) natively in FP32 and (b) with INT8 neuron emulation, then evaluates
both under INT8 inference: the emulation-trained model should hold up at
least as well.

Run:  python examples/training_with_emulation.py
"""

from repro.core import GoldenEye
from repro.core.dse import evaluate_format_accuracy
from repro.data import SyntheticImageNet, make_splits, train
from repro.models import simple_cnn


def main():
    dataset = SyntheticImageNet(num_classes=10, num_samples=600, seed=1)
    train_split, val_split = make_splits(dataset)
    images, labels = val_split

    print("training natively in FP32...")
    native = simple_cnn(num_classes=10, seed=0)
    result = train(native, train_split, val_split, epochs=4, seed=0)
    print(f"  fp32 val accuracy: {result.val_accuracy:.3f}")

    print("training with INT8 neuron emulation in the loop (STE backward)...")
    emulated = simple_cnn(num_classes=10, seed=0)
    platform = GoldenEye(emulated, "int8", quantize_weights=False)
    with platform:
        result_q = train(emulated, train_split, val_split, epochs=4, seed=0)
    print(f"  int8-in-the-loop val accuracy (emulated eval): {result_q.val_accuracy:.3f}")

    print("\nboth models evaluated under INT8 inference emulation:")
    for name, model in (("fp32-trained", native), ("int8-trained", emulated)):
        accuracy = evaluate_format_accuracy(model, images, labels, "int8")
        print(f"  {name:13s} int8 accuracy: {accuracy:.3f}")

    print("\nand under an aggressive INT4 deployment:")
    for name, model in (("fp32-trained", native), ("int8-trained", emulated)):
        accuracy = evaluate_format_accuracy(model, images, labels, "int4")
        print(f"  {name:13s} int4 accuracy: {accuracy:.3f}")


if __name__ == "__main__":
    main()
