"""Use case 3 (§IV-C): fast resiliency analysis with value + metadata flips.

Profiles a trained model's per-layer vulnerability under BFP(e5m5) and
AFP(e5m2): N unique single-bit flips per layer in data values and in hardware
metadata (shared exponents / exponent bias), measured with the ΔLoss metric.
Also demonstrates the toggleable range detector as a low-cost protection.

Run:  python examples/resiliency_analysis.py
"""

from repro.analysis import (
    confidence_stratified_sdc,
    layer_vulnerability_table,
    profile_resilience,
)
from repro.core import GoldenEye, RangeDetector, run_campaign
from repro.core.campaign import golden_inference
from repro.data import SyntheticImageNet, get_pretrained

INJECTIONS = 25
SAMPLES = 16


def main():
    dataset = SyntheticImageNet(num_classes=10, num_samples=800, seed=0)
    print("preparing model (cached after the first run)...")
    model, (images, labels) = get_pretrained("resnet18", dataset, epochs=3)
    x, y = images[:SAMPLES], labels[:SAMPLES]

    for spec in ("bfp_e5m5_b16", "afp_e5m2"):
        profile = profile_resilience(model, "resnet18", spec, x, y,
                                     injections_per_layer=INJECTIONS, seed=0)
        print()
        print(layer_vulnerability_table(profile))
        print(f"network average ΔLoss: value={profile.network_value_delta_loss():.4f} "
              f"metadata={profile.network_metadata_delta_loss():.4f}")

    # --- the range detector as protection ---------------------------------
    print("\nrange detector ablation (BFP metadata campaign):")
    detector = RangeDetector()
    with GoldenEye(model, "bfp_e5m5_b16", range_detector=detector) as ge:
        golden_inference(ge, x, y)  # profiling pass
        detector.active = True
        protected = run_campaign(ge, x, y, kind="metadata",
                                 injections_per_layer=INJECTIONS, seed=0)
    with GoldenEye(model, "bfp_e5m5_b16") as ge:
        unprotected = run_campaign(ge, x, y, kind="metadata",
                                   injections_per_layer=INJECTIONS, seed=0)
    print(f"  mean ΔLoss unprotected: {unprotected.mean_delta_loss():.4f}")
    print(f"  mean ΔLoss with range detector: {protected.mean_delta_loss():.4f}")
    print(f"  faults caught by the detector: {detector.total_detections}")

    # --- confidence-stratified SDC rates (the §I INT8 observation) ---------
    print("\nSDC rate by golden prediction confidence (INT8 value flips):")
    study = confidence_stratified_sdc(model, "int8", images[:64], labels[:64],
                                      injections=40, seed=0)
    print(study.table())


if __name__ == "__main__":
    main()
