"""Use case 1 (§IV-A): a unifying platform for number-format comparison.

Compares a CNN (ResNet analogue) against a vision transformer (DeiT analogue)
across the five number-format families at decreasing bitwidths, reproducing
the structure of the paper's Fig. 4 — including the observation that the two
architectures react differently to the same format, and that AdaptivFloat
recovers low-bitwidth accuracy for the CNN.

Run:  python examples/number_format_comparison.py
"""

from repro.analysis import render_table
from repro.core.dse import FAMILY_BUILDERS, evaluate_format_accuracy
from repro.data import SyntheticImageNet, get_pretrained

BITWIDTHS = (32, 16, 12, 8, 4)
FAMILIES = ("fp", "fxp", "int", "bfp", "afp")


def main():
    dataset = SyntheticImageNet(num_classes=10, num_samples=800, seed=0)
    print("preparing models (cached after the first run)...")
    resnet, (images, labels) = get_pretrained("resnet18", dataset, epochs=3)
    deit, _ = get_pretrained("deit_tiny", dataset, epochs=8)
    images, labels = images[:128], labels[:128]

    rows = []
    for model_name, model in (("resnet18", resnet), ("deit_tiny", deit)):
        baseline = evaluate_format_accuracy(model, images, labels, "fp32")
        for family in FAMILIES:
            accs = []
            for bits in BITWIDTHS:
                fmt = FAMILY_BUILDERS[family](bits, None)
                accs.append(evaluate_format_accuracy(model, images, labels, fmt))
            rows.append((model_name, family, f"{baseline:.3f}",
                         *(f"{a:.3f}" for a in accs)))

    print(render_table(
        ["model", "family", "fp32 base", *(f"{b}b" for b in BITWIDTHS)], rows,
        title="Accuracy vs bitwidth (no fine-tuning; emulation only)"))

    print(
        "\nObservations to look for (cf. paper Fig. 4):\n"
        "  * 16-bit variants match FP32 for both architectures;\n"
        "  * fixed point collapses much earlier for the CNN than the transformer;\n"
        "  * AFP at 8 bits recovers CNN accuracy that plain FP loses;\n"
        "  * everything degrades at 4 bits."
    )


if __name__ == "__main__":
    main()
