"""Extending GoldenEye with a brand-new number system (Table II's last row).

The paper's API contract: implement the four pure-virtual methods of
``NumberFormat`` and the platform handles hooks, metadata, and injection for
free.  Here we add a **logarithmic number system (LNS)** — values stored as a
sign plus a fixed-point base-2 logarithm, a format studied for multiplier-free
DNN inference — and immediately get accuracy evaluation and fault injection.

Run:  python examples/custom_format.py
"""

import numpy as np

from repro.core import GoldenEye, ValueInjection, delta_loss
from repro.core.campaign import golden_inference
from repro.core.dse import evaluate_format_accuracy
from repro.data import SyntheticImageNet, get_pretrained
from repro.formats import NumberFormat, register_format
from repro.formats.bitstring import (
    int_to_twos_complement,
    twos_complement_to_int,
    validate_bits,
)


class LogarithmicFormat(NumberFormat):
    """Sign + fixed-point log2 magnitude: x ~ (-1)^s * 2^(k / 2^frac_bits)."""

    kind = "lns"
    has_metadata = False

    def __init__(self, int_bits: int = 5, frac_bits: int = 2):
        super().__init__(bit_width=1 + int_bits + frac_bits, radix=frac_bits)
        self.int_bits = int_bits
        self.frac_bits = frac_bits
        self.step = 2.0 ** -frac_bits
        magnitude_bits = int_bits + frac_bits
        self.max_code = (1 << magnitude_bits) - 1
        self.min_code = -(1 << magnitude_bits)

    def config(self) -> dict:
        return {"int_bits": self.int_bits, "frac_bits": self.frac_bits}

    @property
    def name(self) -> str:
        return f"lns(1,{self.int_bits},{self.frac_bits})"

    # -- the four pure-virtual methods --------------------------------------
    def real_to_format_tensor(self, tensor: np.ndarray) -> np.ndarray:
        x = np.asarray(tensor, dtype=np.float32).astype(np.float64)
        magnitude = np.abs(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            codes = np.round(np.log2(magnitude) / self.step)
        codes = np.nan_to_num(codes, nan=self.min_code,
                              posinf=self.max_code, neginf=self.min_code)
        codes = np.clip(codes, self.min_code, self.max_code)
        quantized = np.exp2(codes * self.step)
        quantized[magnitude == 0.0] = 0.0
        # min_code doubles as the "zero" encoding (true log of 0 is -inf)
        quantized[codes == self.min_code] = 0.0
        return (np.sign(x) * quantized).astype(np.float32)

    def real_to_format(self, value: float):
        value = float(value)
        sign = 1 if value < 0 else 0
        magnitude = abs(value)
        if magnitude == 0.0:
            code = self.min_code
        else:
            code = int(np.clip(np.round(np.log2(magnitude) / self.step),
                               self.min_code, self.max_code))
        return [sign] + int_to_twos_complement(code, self.bit_width - 1)

    def format_to_real(self, bits) -> float:
        validate_bits(bits, self.bit_width)
        sign = -1.0 if bits[0] else 1.0
        code = twos_complement_to_int(bits[1:])
        if code == self.min_code:
            return sign * 0.0
        return float(sign * 2.0 ** (code * self.step))


def main():
    register_format("lns8", lambda: LogarithmicFormat(5, 2))

    dataset = SyntheticImageNet(num_classes=10, num_samples=400, seed=0)
    model, (images, labels) = get_pretrained("simple_cnn", dataset, epochs=4)

    print("accuracy under the custom logarithmic format vs references:")
    for spec in ("fp32", "fp8", "lns8"):
        accuracy = evaluate_format_accuracy(model, images, labels, spec)
        print(f"  {spec:6s} {accuracy:.3f}")

    # fault injection works immediately: the platform only needs the API
    with GoldenEye(model, "lns8") as platform:
        golden = golden_inference(platform, images[:32], labels[:32])
        plan = ValueInjection("fc", "neuron", 0, bits=(1,))  # log-magnitude MSB
        with platform.injector.armed(plan):
            faulty = golden_inference(platform, images[:32], labels[:32])
    print(f"\nΔLoss of a log-magnitude MSB flip under lns8: "
          f"{delta_loss(golden.logits, faulty.logits, labels[:32]):.4f}")


if __name__ == "__main__":
    main()
