"""Use case 2 (§IV-B): design-space exploration for number-format selection.

Runs the paper's recursive binary-tree heuristic over each format family for
a trained model: phase 1 walks the bitwidth tree, phase 2 the radix tree,
taking the "shorter" branch whenever the accuracy stays within the threshold
of the FP32 baseline.  Prints the Fig. 6-style node trace (visit order on the
x-axis) and the suggested format per family.

Run:  python examples/dse_search.py [model-name]
"""

import sys

from repro.analysis import render_table
from repro.core import binary_tree_search
from repro.data import SyntheticImageNet, get_pretrained


def main(model_name: str = "resnet18"):
    dataset = SyntheticImageNet(num_classes=10, num_samples=800, seed=0)
    print(f"preparing {model_name} (cached after the first run)...")
    epochs = 8 if model_name.startswith("deit") else 3
    model, (images, labels) = get_pretrained(model_name, dataset, epochs=epochs)
    images, labels = images[:128], labels[:128]

    summary_rows = []
    for family in ("fp", "fxp", "int", "bfp", "afp"):
        result = binary_tree_search(model, images, labels, family=family,
                                    threshold=0.02)
        print(f"\n=== family {family} "
              f"(baseline {result.baseline_accuracy:.3f}, "
              f"threshold -{result.threshold:.0%}) ===")
        print(render_table(
            ["node", "phase", "format", "bits", "radix", "accuracy", "ok"],
            [(n.index, n.phase, n.format.name, n.bitwidth, n.radix,
              f"{n.accuracy:.3f}", "*" if n.acceptable else "")
             for n in result.nodes]))
        best = result.best
        summary_rows.append((
            family,
            result.nodes_visited,
            best.format.name if best else "(none acceptable)",
            f"{best.accuracy:.3f}" if best else "-",
        ))

    print()
    print(render_table(["family", "nodes visited", "suggested format", "accuracy"],
                       summary_rows, title=f"DSE summary for {model_name}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "resnet18")
