"""Quickstart: emulate a number format and inject a fault in ~40 lines.

Trains (or loads from cache) a small CNN on the synthetic dataset, measures
its accuracy under a few emulated number formats, then performs one single-bit
error injection and reports the mismatch and ΔLoss metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GoldenEye, ValueInjection, delta_loss, mismatch_rate
from repro.core.campaign import golden_inference
from repro.core.dse import evaluate_format_accuracy
from repro.data import SyntheticImageNet, get_pretrained


def main():
    # 1. a model + validation data (cached after the first run)
    dataset = SyntheticImageNet(num_classes=10, num_samples=400, seed=0)
    model, (images, labels) = get_pretrained("simple_cnn", dataset, epochs=4)

    # 2. accuracy under different emulated number formats (use case 1)
    print("accuracy by number format:")
    for spec in ["fp32", "fp16", "bfloat16", "fp8", "int8", "bfp_e5m5_b16", "afp_e4m3"]:
        accuracy = evaluate_format_accuracy(model, images, labels, spec)
        print(f"  {spec:14s} {accuracy:.3f}")

    # 3. a single-bit error injection under FP16 emulation (use case 3)
    platform = GoldenEye(model, "fp16")
    with platform:
        golden = golden_inference(platform, images[:32], labels[:32])
        # flip the exponent MSB (bit 1) of logit 0 in the final linear layer
        plan = ValueInjection(layer="fc", location="neuron", flat_index=0, bits=(1,))
        with platform.injector.armed(plan):
            faulty = golden_inference(platform, images[:32], labels[:32])

    print("\nsingle-bit flip in fc output, FP16 (exponent MSB):")
    print(f"  mismatch rate: {mismatch_rate(golden.logits, faulty.logits):.3f}")
    print(f"  ΔLoss:         {delta_loss(golden.logits, faulty.logits, labels[:32]):.4f}")

    # 4. the model is restored after detach
    restored = evaluate_format_accuracy(model, images, labels, "fp32")
    print(f"\nmodel restored; fp32 accuracy unchanged: {restored:.3f}")


if __name__ == "__main__":
    main()
