"""§V-D future directions, implemented: security analysis and faulty training.

Part 1 — adversarial attacks vs number format: craft FGSM/PGD attacks against
the FP32 model and measure how well they transfer to the same model running
under emulated low-precision formats (quantization partially masks the attack
gradient's fine structure).

Part 2 — training with gradient faults: train under random single-bit
gradient flips, with and without gradient clipping as the protection, showing
how GoldenEye-style injection extends to the training loop.

Run:  python examples/security_analysis.py
"""

from repro.analysis import attack_success_by_format, attack_table
from repro.core import train_with_gradient_faults
from repro.data import SyntheticImageNet, get_pretrained, make_splits
from repro.models import simple_cnn


def main():
    dataset = SyntheticImageNet(num_classes=10, num_samples=600, seed=0)
    model, (images, labels) = get_pretrained("simple_cnn", dataset, epochs=4)

    # --- part 1: attack efficacy as a function of the number format --------
    for attack, epsilon in (("fgsm", 0.15), ("pgd", 0.1)):
        results = attack_success_by_format(
            model, images[:96], labels[:96], epsilon=epsilon, attack=attack,
            formats=("native", "fp16", "fp8", "int8", "bfp_e5m5_b16",
                     "afp_e4m3", "posit8"))
        print(attack_table(results, attack, epsilon))
        print()

    # --- part 2: training under gradient bit flips -------------------------
    train_split, _ = make_splits(dataset)
    x, y = train_split[0][:256], train_split[1][:256]
    print("training with an exponent-MSB gradient flip every step (worst case):")
    for clip, label in ((None, "unprotected"), (1.0, "with gradient clipping")):
        result = train_with_gradient_faults(
            simple_cnn(num_classes=10, seed=0), x, y,
            epochs=3, fault_probability=1.0, force_bit=1, seed=0,
            clip_gradients=clip)
        print(f"  {label:24s} accuracy={result.final_accuracy:.3f} "
              f"faults={result.faults_injected} diverged={result.diverged}")
    print("  (note: Adam's adaptive normalization itself masks most single\n"
          "   gradient faults — the per-step update is bounded by ~lr no\n"
          "   matter how large the corrupted gradient is)")


if __name__ == "__main__":
    main()
